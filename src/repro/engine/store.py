"""Content-addressed on-disk artifact store.

Every pipeline artifact (compile results, execution traces, statistical
profiles, synthesized clones) is keyed by the SHA-256 of a canonical
JSON record: the source fingerprint, ISA, optimization level, pipeline
stage, stage-specific parameters, and the engine schema version.  Equal
inputs therefore map to the same on-disk entry across processes and
across runs, which is what makes warm-cache report generation skip every
compile/run/profile/synthesize step.

Layout: ``<root>/objects/<key[:2]>/<key>.pkl`` with atomic writes
(temp file + ``os.replace``), so concurrent writers — the scheduler's
worker processes — can race on the same key safely: last write wins and
both wrote identical bytes.

The root directory resolves, in order: explicit ``root=`` argument, the
``REPRO_CACHE_DIR`` environment variable, ``$XDG_CACHE_HOME/repro``,
``~/.cache/repro``.

Lifecycle: setting ``REPRO_CACHE_MAX_BYTES`` (or ``max_bytes=``) turns
every ``put`` into a size-capped write — the LRU :meth:`evict` sweep
runs whenever the store grows past the cap (parallel runs write
uncapped and settle the cap once per graph).  ``fsck`` detects and
removes corrupt or truncated pickles plus ``.tmp`` files orphaned by
killed writers.  Every ``put`` also records a provenance sidecar
(``<key>.meta.json`` with the writing store's schema version and
toolchain digest), which is what lets :meth:`gc` evict entries no
live reader can reach anymore (cross-schema garbage collection).

Syncing: :meth:`export_keys` copies selected objects into another
store-rooted directory and :meth:`import_keys` absorbs them — the seam
the sharded execution backend (and a future SSH/remote backend) moves
artifacts through.

``repro-cache`` (console script, also ``python -m repro.engine.store``)
exposes ``info`` / ``stats [--by-stage]`` / ``clear`` / ``evict`` /
``fsck`` / ``gc`` against that same resolution.  Sidecars additionally
record the pipeline stage that produced an entry (when the writer knows
it), which is what ``stats --by-stage`` aggregates — replay-cache
growth is observable as its own line.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Bump whenever the pickled artifact layout or the key recipe changes;
#: old entries then become unreachable instead of silently wrong.
#: 2: TimingResult grew mem_lat_hist/branch_run_hist snapshot fields.
SCHEMA_VERSION = 2

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

_MISS = object()


def default_cache_root() -> Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def source_fingerprint(source: str) -> str:
    """SHA-256 of a source text, the ``source_sha`` field of every key."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


_TOOLCHAIN_FINGERPRINT: str | None = None


def toolchain_fingerprint() -> str:
    """SHA-256 over the ``repro`` package sources (computed once).

    Folded into every key so artifacts produced by one version of the
    compiler/simulator/synthesizer never satisfy lookups from another —
    the same reason ccache hashes the compiler binary.
    """
    global _TOOLCHAIN_FINGERPRINT
    if _TOOLCHAIN_FINGERPRINT is None:
        import repro

        package_root = Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _TOOLCHAIN_FINGERPRINT = digest.hexdigest()
    return _TOOLCHAIN_FINGERPRINT


def canonical_key(fields: dict) -> str:
    """SHA-256 of the canonical JSON encoding of *fields*.

    Field order never matters (keys are sorted) and only JSON-stable
    types should appear in *fields*; anything else is stringified, which
    keeps the recipe total but places the burden of stability on callers.
    """
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"),
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Hit/miss/write/eviction counters for one store handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def merge(self, other: "StoreStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.puts += other.puts
        self.evictions += other.evictions

    def reset(self) -> None:
        self.hits = self.misses = self.puts = self.evictions = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


@dataclass
class ArtifactStore:
    """Persistent pickle store addressed by canonical content keys."""

    root: Path | str | None = None
    schema_version: int = SCHEMA_VERSION
    toolchain: str | None = None
    stats: StoreStats = field(default_factory=StoreStats)
    #: Size cap enforced on every put (None = unbounded).  Defaults to
    #: ``REPRO_CACHE_MAX_BYTES`` when set.
    max_bytes: int | None = None

    def __post_init__(self) -> None:
        self.root = Path(self.root).expanduser() if self.root else \
            default_cache_root()
        if self.max_bytes is None:
            env = os.environ.get(CACHE_MAX_BYTES_ENV)
            if env:
                self.max_bytes = int(env)
        # Running size estimate for the capped-put path: seeded by one
        # scan, advanced per write, re-grounded by every evict()'s own
        # scan.  Approximate under concurrent writers (and overwrites
        # count twice), which only means an early sweep — correctness
        # comes from evict() re-measuring.
        self._approx_bytes: int | None = None

    # -- keys --------------------------------------------------------------

    def key_for(self, stage: str, **fields) -> str:
        """Canonical key for *stage* under this store's schema version
        and toolchain fingerprint (default: the live ``repro`` package).
        """
        record = {
            "schema": self.schema_version,
            "stage": stage,
            "toolchain": self.toolchain or toolchain_fingerprint(),
        }
        record.update(fields)
        return canonical_key(record)

    def path_for(self, key: str) -> Path:
        return Path(self.root) / "objects" / key[:2] / f"{key}.pkl"

    @staticmethod
    def _meta_path(path: Path) -> Path:
        """The provenance sidecar next to an object file."""
        return path.with_suffix(".meta.json")

    @staticmethod
    def _unlink_object(path: Path) -> None:
        """Remove an object file together with its provenance sidecar."""
        path.unlink(missing_ok=True)
        ArtifactStore._meta_path(path).unlink(missing_ok=True)

    def _atomic_write(self, target: Path, data: bytes) -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- access ------------------------------------------------------------

    def get(self, key: str, default=None):
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return default
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # A truncated or stale entry is a miss; drop it so the slot
            # gets rewritten rather than failing every future lookup.
            self._unlink_object(path)
            self.stats.misses += 1
            return default
        try:
            # Freshen mtime so evict()'s LRU order reflects reads, not
            # just writes.
            os.utime(path)
        except OSError:
            pass
        self.stats.hits += 1
        return value

    def put(self, key: str, value, stage: str | None = None,
            seconds: float | None = None) -> Path:
        path = self.path_for(key)
        # Provenance sidecar first, then the object: an entry is never
        # visible without the metadata gc() reads to classify it.  (A
        # failed put may orphan a sidecar; clear() reclaims those.)
        meta: dict = {
            "schema": self.schema_version,
            "toolchain": self.toolchain or toolchain_fingerprint(),
        }
        if stage is not None:
            # Writers that know which pipeline stage produced the entry
            # record it, which is what `repro-cache stats --by-stage`
            # aggregates; stage-less puts stay classifiable by gc().
            meta["stage"] = stage
        if seconds is not None:
            # Measured wall-clock of the stage execution that produced
            # the entry — the raw history `stats --by-stage` averages
            # and the serve layer's CostModel learns from.
            meta["seconds"] = round(float(seconds), 6)
        self._atomic_write(
            self._meta_path(path), json.dumps(meta).encode("utf-8"),
        )
        self._atomic_write(
            path, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        )
        self.stats.puts += 1
        if self.max_bytes is not None:
            if self._approx_bytes is None:
                self._approx_bytes = sum(
                    size for _, size, _ in self.entries()
                )
            else:
                try:
                    self._approx_bytes += path.stat().st_size
                except OSError:  # racing eviction
                    pass
            if self._approx_bytes > self.max_bytes:
                self.evict(max_bytes=self.max_bytes)
        return path

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def delete(self, key: str) -> bool:
        path = self.path_for(key)
        if path.exists():
            self._unlink_object(path)
            self._approx_bytes = None
            return True
        return False

    # -- syncing -------------------------------------------------------------

    def export_keys(self, keys, dest) -> int:
        """Copy *keys*' objects (plus provenance sidecars) into *dest*,
        laid out as another store root.

        The receiving side absorbs them with :meth:`import_keys`; a
        shard worker exports exactly what it computed, and a remote
        backend would ship the directory over the wire.  Keys not
        present locally are skipped.  Returns the number exported.
        """
        dest = Path(dest).expanduser()
        exported = 0
        for key in keys:
            src = self.path_for(key)
            if not src.exists():
                continue
            target = dest / "objects" / key[:2] / f"{key}.pkl"
            self._atomic_write(target, src.read_bytes())
            meta = self._meta_path(src)
            if meta.exists():
                self._atomic_write(self._meta_path(target),
                                   meta.read_bytes())
            exported += 1
        return exported

    def import_keys(self, source, keys=None) -> int:
        """Absorb objects from *source* — another store root or an
        :meth:`export_keys` directory — into this store.

        Every absorbed object counts as a put (the parent's counters
        stay an accurate account of the whole run).  *keys* narrows the
        import; ``None`` takes everything.  Returns the number imported.
        """
        objects = Path(source).expanduser() / "objects"
        if keys is None:
            paths = sorted(objects.glob("*/*.pkl")) if objects.is_dir() \
                else []
        else:
            paths = [objects / key[:2] / f"{key}.pkl" for key in keys]
        imported = 0
        for src in paths:
            if not src.exists():
                continue
            target = self.path_for(src.stem)
            self._atomic_write(target, src.read_bytes())
            meta = self._meta_path(src)
            if meta.exists():
                self._atomic_write(self._meta_path(target),
                                   meta.read_bytes())
            self.stats.puts += 1
            imported += 1
        if imported:
            self._approx_bytes = None
        return imported

    # -- maintenance ---------------------------------------------------------

    def entries(self):
        """Yield ``(path, size_bytes, mtime)`` for every stored object."""
        objects = Path(self.root) / "objects"
        if not objects.is_dir():
            return
        for path in sorted(objects.glob("*/*.pkl")):
            try:
                stat = path.stat()
            except FileNotFoundError:  # racing eviction
                continue
            yield path, stat.st_size, stat.st_mtime

    def info(self) -> dict:
        count = 0
        total = 0
        for _, size, _ in self.entries():
            count += 1
            total += size
        return {
            "root": str(self.root),
            "schema_version": self.schema_version,
            "entries": count,
            "total_bytes": total,
            "stats": self.stats.as_dict(),
        }

    def by_stage(self) -> dict[str, dict]:
        """Per-stage ``{"entries": n, "bytes": b, "mean_seconds": s,
        "timed_entries": t}`` breakdown, read from the provenance
        sidecars.

        Entries whose sidecar predates stage recording (or is missing)
        group under ``"(unknown)"`` — observability never guesses.  This
        is what makes replay-cache growth visible as its own line
        instead of disappearing into one total.  ``mean_seconds``
        averages the measured stage wall-clock over the
        ``timed_entries`` entries that recorded one (``None``/0 when no
        entry did) — the sample count is what distinguishes one outlier
        compile from a trend.
        """
        breakdown: dict[str, dict] = {}
        timed: dict[str, tuple[int, float]] = {}
        for path, size, _ in self.entries():
            try:
                meta = json.loads(self._meta_path(path).read_text())
            except (OSError, ValueError):
                meta = None
            stage = (meta or {}).get("stage") or "(unknown)"
            bucket = breakdown.setdefault(
                stage, {"entries": 0, "bytes": 0, "mean_seconds": None,
                        "timed_entries": 0}
            )
            bucket["entries"] += 1
            bucket["bytes"] += size
            seconds = (meta or {}).get("seconds")
            if isinstance(seconds, (int, float)):
                count, total = timed.get(stage, (0, 0.0))
                timed[stage] = (count + 1, total + float(seconds))
        for stage, (count, total) in timed.items():
            breakdown[stage]["mean_seconds"] = total / count
            breakdown[stage]["timed_entries"] = count
        return breakdown

    def clear(self) -> int:
        """Remove every entry (and any ``.tmp`` leftovers); returns the
        number of entries removed."""
        removed = 0
        for path, _, _ in list(self.entries()):
            self._unlink_object(path)
            removed += 1
        objects = Path(self.root) / "objects"
        if objects.is_dir():
            for pattern in ("*/*.tmp", "*/*.meta.json"):
                for path in objects.glob(pattern):
                    path.unlink(missing_ok=True)
        self.stats.evictions += removed
        self._approx_bytes = 0
        return removed

    #: A ``.tmp`` older than this is an orphan from a killed writer —
    #: real writes replace within milliseconds.
    STALE_TMP_SECONDS = 3600

    def stale_tmp_files(self) -> list[Path]:
        """Leftover ``.tmp`` files from writers that died mid-put."""
        objects = Path(self.root) / "objects"
        if not objects.is_dir():
            return []
        cutoff = time.time() - self.STALE_TMP_SECONDS
        stale = []
        for path in sorted(objects.glob("*/*.tmp")):
            try:
                if path.stat().st_mtime < cutoff:
                    stale.append(path)
            except FileNotFoundError:
                continue
        return stale

    def fsck(self, remove: bool = True) -> dict:
        """Integrity sweep: unpickle every entry, flag the broken ones.

        Corrupt or truncated entries (failed unpickle) are removed when
        *remove* is true, so the slots get rewritten on the next miss
        instead of failing every future lookup; stale ``.tmp`` orphans
        (invisible to :meth:`entries` and the size cap) are reclaimed
        the same way.  Returns ``{"scanned", "corrupt", "removed",
        "stale_tmp", "tmp_removed"}``.
        """
        scanned = 0
        corrupt: list[str] = []
        removed = 0
        for path, _, _ in list(self.entries()):
            scanned += 1
            try:
                with open(path, "rb") as fh:
                    pickle.load(fh)
            except FileNotFoundError:  # racing eviction
                continue
            except Exception:
                corrupt.append(str(path))
                if remove:
                    self._unlink_object(path)
                    removed += 1
        stale_tmp = self.stale_tmp_files()
        tmp_removed = 0
        if remove:
            for path in stale_tmp:
                path.unlink(missing_ok=True)
                tmp_removed += 1
        self.stats.evictions += removed
        if removed:
            self._approx_bytes = None
        return {"scanned": scanned, "corrupt": corrupt, "removed": removed,
                "stale_tmp": [str(path) for path in stale_tmp],
                "tmp_removed": tmp_removed}

    def evict(self, max_bytes: int | None = None,
              max_entries: int | None = None) -> int:
        """LRU-evict (oldest mtime first) until both limits hold."""
        entries = sorted(self.entries(), key=lambda item: item[2])
        count = len(entries)
        total = sum(size for _, size, _ in entries)
        removed = 0
        for path, size, _ in entries:
            over_bytes = max_bytes is not None and total > max_bytes
            over_entries = max_entries is not None and count > max_entries
            if not (over_bytes or over_entries):
                break
            self._unlink_object(path)
            total -= size
            count -= 1
            removed += 1
        self.stats.evictions += removed
        self._approx_bytes = total
        return removed

    def gc(self, remove: bool = True, collect_unknown: bool = False) -> dict:
        """Cross-schema garbage collection.

        Evicts entries whose recorded schema version or toolchain
        fingerprint no longer matches the live ``repro`` package — no
        reader built from the current sources can ever address them, so
        they only consume disk.  Entries without a provenance sidecar
        (written before provenance tracking, or racing writers) can't be
        classified — their keys may still be addressable — so they are
        only reported (``unknown``) unless *collect_unknown* opts in.
        ``remove=False`` (the CLI's ``--dry-run``) only reports.
        Returns ``{"scanned", "stale", "unknown", "removed", "kept"}``.
        """
        live_schema = SCHEMA_VERSION
        live_toolchain = toolchain_fingerprint()
        scanned = 0
        stale: list[str] = []
        unknown: list[str] = []
        removed = 0
        for path, _, _ in list(self.entries()):
            scanned += 1
            try:
                meta = json.loads(self._meta_path(path).read_text())
            except (OSError, ValueError):
                meta = None
            if meta is None:
                unknown.append(str(path))
                if not collect_unknown:
                    continue
            elif meta.get("schema") == live_schema and \
                    meta.get("toolchain") == live_toolchain:
                continue
            else:
                stale.append(str(path))
            if remove:
                self._unlink_object(path)
                removed += 1
        self.stats.evictions += removed
        if removed:
            self._approx_bytes = None
        kept = scanned - len(stale) - \
            (len(unknown) if collect_unknown else 0)
        return {"scanned": scanned, "stale": stale, "unknown": unknown,
                "removed": removed, "kept": kept}


def main(argv=None) -> int:
    """``repro-cache`` — inspect and manage the artifact store."""
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Inspect and manage the repro content-addressed "
                    "artifact store.",
    )
    parser.add_argument(
        "--cache-dir",
        help=f"store root (default: ${CACHE_DIR_ENV} or ~/.cache/repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="print store location, entry count, size")
    stats = sub.add_parser(
        "stats", help="entry-count/bytes totals, optionally per stage"
    )
    stats.add_argument(
        "--by-stage", action="store_true",
        help="break entries/bytes/mean-execution-seconds down per "
             "pipeline stage (from the provenance sidecars; pre-stage "
             "entries show as (unknown))",
    )
    sub.add_parser("clear", help="remove every cached artifact")
    evict = sub.add_parser("evict", help="LRU-evict down to the given limits")
    evict.add_argument("--max-bytes", type=int, default=None)
    evict.add_argument("--max-entries", type=int, default=None)
    fsck = sub.add_parser(
        "fsck", help="detect (and remove) corrupt or truncated entries"
    )
    fsck.add_argument(
        "--keep", action="store_true",
        help="report corrupt entries without removing them",
    )
    gc = sub.add_parser(
        "gc",
        help="evict entries whose schema version or toolchain "
             "fingerprint no longer matches the live package",
    )
    gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be collected without removing anything",
    )
    gc.add_argument(
        "--collect-unknown", action="store_true",
        help="also collect entries without a provenance sidecar "
             "(kept by default: their keys may still be addressable)",
    )
    args = parser.parse_args(argv)

    store = ArtifactStore(root=args.cache_dir)
    if args.command == "info":
        info = store.info()
        print(f"root:           {info['root']}")
        print(f"schema version: {info['schema_version']}")
        print(f"entries:        {info['entries']}")
        print(f"total bytes:    {info['total_bytes']}")
    elif args.command == "stats":
        info = store.info()
        print(f"root:        {info['root']}")
        print(f"entries:     {info['entries']}")
        print(f"total bytes: {info['total_bytes']}")
        if args.by_stage:
            breakdown = store.by_stage()
            width = max((len(stage) for stage in breakdown), default=5)
            for stage in sorted(breakdown):
                bucket = breakdown[stage]
                mean = bucket.get("mean_seconds")
                samples = bucket.get("timed_entries", 0)
                timing = (f"  {mean:>10.4f} s mean over {samples} sample(s)"
                          if mean is not None else f"  {'-':>10}       ")
                print(f"  {stage:<{width}}  {bucket['entries']:>7} entries"
                      f"  {bucket['bytes']:>12} bytes{timing}")
    elif args.command == "clear":
        print(f"removed {store.clear()} entries from {store.root}")
    elif args.command == "evict":
        if args.max_bytes is None and args.max_entries is None:
            parser.error("evict requires --max-bytes and/or --max-entries")
        removed = store.evict(max_bytes=args.max_bytes,
                              max_entries=args.max_entries)
        print(f"evicted {removed} entries from {store.root}")
    elif args.command == "fsck":
        report = store.fsck(remove=not args.keep)
        for path in report["corrupt"]:
            print(f"corrupt: {path}")
        for path in report["stale_tmp"]:
            print(f"stale tmp: {path}")
        print(
            f"scanned {report['scanned']} entries in {store.root}: "
            f"{len(report['corrupt'])} corrupt, {report['removed']} removed, "
            f"{report['tmp_removed']} stale tmp reclaimed"
        )
        if (report["corrupt"] or report["stale_tmp"]) and args.keep:
            return 1
    elif args.command == "gc":
        report = store.gc(remove=not args.dry_run,
                          collect_unknown=args.collect_unknown)
        for path in report["stale"]:
            print(f"stale: {path}")
        for path in report["unknown"]:
            print(f"no provenance: {path}")
        collectable = len(report["stale"]) + (
            len(report["unknown"]) if args.collect_unknown else 0
        )
        verb = "would collect" if args.dry_run else "collected"
        print(
            f"scanned {report['scanned']} entries in {store.root}: "
            f"{len(report['stale'])} stale, {len(report['unknown'])} "
            f"without provenance; {verb} {collectable}, "
            f"kept {report['kept']}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
