"""`Engine` — the facade the experiment layer runs on.

Combines three layers of reuse:

* an in-process memo (same-object returns within one Engine, like the
  old ``ExperimentRunner`` dicts);
* the persistent content-addressed :class:`ArtifactStore` (results
  survive across processes and invocations);
* the DAG scheduler (:meth:`warm` fans the whole experiment grid out
  over the configured execution backend before the figures read
  anything).

``ExperimentRunner`` delegates every pipeline step here, so all figure
modules, the report generator, and the benchmark harness get caching
and parallelism without code changes.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.engine import tasks as _tasks
from repro.engine.scheduler import run_graph
from repro.engine.store import ArtifactStore, StoreStats
from repro.engine.tasks import (
    DEFAULT_TARGET_INSTRUCTIONS,
    REF_ISA,
    REF_OPT,
    Task,
    build_pipeline_graph,
    key_fields,
    run_stage,
)

_MISS = object()


class Engine:
    """Cached, parallel executor for the paper's experiment pipeline."""

    def __init__(
        self,
        target_instructions: int = DEFAULT_TARGET_INSTRUCTIONS,
        workers: int = 1,
        store: ArtifactStore | None = None,
        use_cache: bool = True,
        cache_dir=None,
        backend=None,
        on_timing=None,
        runner=None,
        metrics=None,
        tracer=None,
    ) -> None:
        self.target_instructions = target_instructions
        self.workers = max(1, workers)
        #: Execution backend for bulk runs: an ExecutionBackend
        #: instance, a registered name (inline/thread/process/shard),
        #: or None — resolved per warm() against $REPRO_BACKEND and the
        #: worker count (see repro.engine.backends).
        self.backend = backend
        #: The stage runner — ``callable(task, deps)``, default
        #: :func:`run_stage`.  The serve daemon swaps in a
        #: :class:`~repro.serve.coalesce.CoalescingRunner` here so
        #: overlapping jobs share in-flight nodes.
        self.runner = runner if runner is not None else run_stage
        #: ``callable(stage, seconds)`` observing every stage this
        #: engine executes (inline chains and warm() graphs alike) —
        #: the hook a :class:`~repro.serve.costs.CostModel` learns
        #: measured stage costs through.  Cache hits are not reported.
        self.on_timing = on_timing
        #: Optional observability handles (:mod:`repro.obs`): a
        #: :class:`~repro.obs.MetricsRegistry` and/or
        #: :class:`~repro.obs.Tracer` threaded through every graph this
        #: engine runs (and inline chains via :meth:`_materialize`).
        self.metrics = metrics
        self.tracer = tracer
        if store is not None:
            self.store = store
        elif use_cache:
            self.store = ArtifactStore(root=cache_dir)
        else:
            self.store = None
        self._memo: dict[str, Any] = {}
        self._synth_noted: set[str] = set()

    # -- plumbing ----------------------------------------------------------

    @property
    def stats(self) -> StoreStats:
        """Store counters (zeros when caching is disabled)."""
        return self.store.stats if self.store is not None else StoreStats()

    def _probe(self, task: Task):
        """Resolve *task* without computing (memo → store) or ``_MISS``."""
        if task.id in self._memo:
            return self._memo[task.id]
        if self.store is not None:
            key = self.store.key_for(task.stage, **key_fields(task))
            cached = self.store.get(key, _MISS)
            if cached is not _MISS:
                self._memo[task.id] = cached
            return cached
        return _MISS

    def _materialize(self, task: Task, probed_miss: bool = False) -> Any:
        """Memo → store → compute-inline resolution for one node.

        Mirrors the cache discipline of the scheduler's submit loop
        (``scheduler._run_submitting`` driving the inline backend);
        both must agree on key recipe and hit/miss accounting.
        *probed_miss* skips the store lookup when the caller already
        observed (and counted) the miss.
        """
        if task.id in self._memo:
            return self._memo[task.id]
        if not probed_miss:
            value = self._probe(task)
            if value is not _MISS:
                return value
        deps = {dep: self._memo[dep] for dep in task.deps} if task.deps \
            else {}
        started = time.perf_counter()
        value = self.runner(task, deps)
        elapsed = time.perf_counter() - started
        if self.store is not None:
            self.store.put(self.store.key_for(task.stage, **key_fields(task)),
                           value, stage=task.stage, seconds=elapsed)
        if self.on_timing is not None:
            self.on_timing(task.stage, elapsed)
        if self.metrics is not None:
            self.metrics.count("engine_stages_executed", tag=task.stage,
                               label="stage")
            workload = task.payload.get("workload")
            if workload:
                self.metrics.count("engine_workload_stages", tag=workload,
                                   label="workload")
            self.metrics.observe_latency("engine_dispatch_seconds", elapsed,
                                         tags={"stage": task.stage})
        if self.tracer is not None:
            self.tracer.add_span(task.id, task.stage,
                                 started - self.tracer.epoch_perf, elapsed,
                                 {"outcome": "executed"})
        self._memo[task.id] = value
        return value

    def _chain(self, *chain: Task) -> Any:
        """Materialize a linear dependency chain, deepest-cached first.

        Keys are computable before execution (see tasks.key_fields), so
        probing walks backward from the terminal: a cached terminal
        costs one load, and any cached intermediate cuts off everything
        upstream of it — nothing is recompiled just to feed a stage the
        store can already serve.
        """
        probed_missed: set[str] = set()
        start = 0
        for i in range(len(chain) - 1, -1, -1):
            value = self._probe(chain[i])
            if value is not _MISS:
                if i == len(chain) - 1:
                    return value
                start = i + 1
                break
            probed_missed.add(chain[i].id)
        for task in chain[start:]:
            self._materialize(task, probed_miss=task.id in probed_missed)
        return self._memo[chain[-1].id]

    # -- pipeline steps (the old ExperimentRunner surface) -----------------

    def source(self, workload: str, input_name: str) -> str:
        key = f"source:{workload}/{input_name}"
        if key not in self._memo:
            from repro.workloads import get_workload

            self._note_synth((workload,))
            self._memo[key] = get_workload(workload).source_for(input_name)
        return self._memo[key]

    def _note_synth(self, workload_names: Iterable[str]) -> None:
        """Persist synthetic recipes touched by this engine to the store
        (provenance; names alone stay sufficient for regeneration)."""
        if self.store is None:
            return
        for name in workload_names:
            if not name.startswith("synth:") or name in self._synth_noted:
                continue
            from repro.workloads.synth import SynthRecipe, persist_recipe

            try:
                recipe = SynthRecipe.parse(name)
            except KeyError:
                continue  # malformed; resolution will surface the error
            persist_recipe(self.store, recipe)
            self._synth_noted.add(name)

    def original_trace(self, workload: str, input_name: str,
                       isa: str = REF_ISA, opt_level: int = REF_OPT):
        return self._chain(
            _tasks.compile_task(workload, input_name, isa, opt_level),
            _tasks.run_task(workload, input_name, isa, opt_level),
        )

    def _reference_chain(self, workload: str, input_name: str) -> list[Task]:
        return [
            _tasks.compile_task(workload, input_name, REF_ISA, REF_OPT),
            _tasks.run_task(workload, input_name, REF_ISA, REF_OPT),
            _tasks.profile_task(workload, input_name),
        ]

    def profile(self, workload: str, input_name: str):
        return self._chain(*self._reference_chain(workload, input_name))

    def clone(self, workload: str, input_name: str):
        return self._chain(
            *self._reference_chain(workload, input_name),
            _tasks.synthesize_task(workload, input_name,
                                   self.target_instructions),
        )

    def synthetic_trace(self, workload: str, input_name: str,
                        isa: str = REF_ISA, opt_level: int = REF_OPT):
        return self._chain(
            *self._reference_chain(workload, input_name),
            _tasks.synthesize_task(workload, input_name,
                                   self.target_instructions),
            _tasks.compile_clone_task(workload, input_name, isa, opt_level,
                                      self.target_instructions),
            _tasks.run_clone_task(workload, input_name, isa, opt_level,
                                  self.target_instructions),
        )

    def replay_timing(self, workload: str, input_name: str, machine_spec,
                      opt_level: int = REF_OPT, side: str = "org"):
        """Time one side's trace on *machine_spec*; returns the
        :class:`~repro.sim.timing_common.TimingResult`.

        Runs through the engine like every other stage: the replay node
        is content-addressed by the machine's fingerprint, so a warmed
        sweep resolves it from the memo/store without ever loading the
        trace — scoring N machine points on a warm cache costs N small
        reads, zero decodes, zero simulations.
        """
        isa = machine_spec.isa
        if side == "syn":
            return self._chain(
                *self._reference_chain(workload, input_name),
                _tasks.synthesize_task(workload, input_name,
                                       self.target_instructions),
                _tasks.compile_clone_task(workload, input_name, isa,
                                          opt_level,
                                          self.target_instructions),
                _tasks.run_clone_task(workload, input_name, isa, opt_level,
                                      self.target_instructions),
                _tasks.replay_task(workload, input_name, opt_level,
                                   machine_spec, side="syn",
                                   target_instructions=
                                   self.target_instructions),
            )
        return self._chain(
            _tasks.compile_task(workload, input_name, isa, opt_level),
            _tasks.run_task(workload, input_name, isa, opt_level),
            _tasks.replay_task(workload, input_name, opt_level,
                               machine_spec, side="org"),
        )

    # -- bulk execution ----------------------------------------------------

    def warm(
        self,
        pairs: Iterable[tuple[str, str]],
        coords: Iterable[tuple[str, int]] = ((REF_ISA, REF_OPT),),
        workers: int | None = None,
        sides: tuple[str, ...] = ("org", "syn"),
        backend=None,
        machine_points=(),
    ) -> int:
        """Materialize the full pipeline grid for *pairs* × *coords*.

        Independent nodes fan out over the engine's execution backend
        across ``workers`` (defaults: the engine's configured backend
        and worker count); every result lands in the memo and, when
        enabled, the persistent store.  *sides* narrows the grid to the
        original and/or synthetic pipeline (a figure that derives its
        synthetic from consolidated profiles only needs ``("org",)``).
        *machine_points* — ``(MachineSpec, opt_level)`` pairs — extends
        the grid with timing replays (compile → run → replay per pair
        and side), which is how a design-space sweep becomes one batched
        engine graph.  Returns the number of graph nodes.
        """
        pairs = tuple(pairs)
        self._note_synth({workload for workload, _ in pairs})
        graph = build_pipeline_graph(
            pairs, tuple(coords),
            target_instructions=self.target_instructions,
            sides=sides,
            machine_points=tuple(machine_points),
        )
        if any(task_id not in self._memo for task_id in graph):
            results = run_graph(graph, workers=workers or self.workers,
                                store=self.store, preloaded=self._memo,
                                runner=self.runner,
                                backend=backend or self.backend,
                                on_timing=self.on_timing,
                                metrics=self.metrics, tracer=self.tracer)
            for task_id, value in results.items():
                self._memo.setdefault(task_id, value)
        return len(graph)
