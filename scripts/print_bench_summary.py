#!/usr/bin/env python3
"""CI perf-trajectory summary for the ``BENCH_engine.json`` artifact.

Writes a markdown per-benchmark delta table (and, when present, the
replay-kernel and functional-execution throughput tables) to
``$GITHUB_STEP_SUMMARY`` — falling
back to stdout outside Actions — by diffing the current run against the
previous run's artifact, in the spirit of coreblocks'
``ci/print_benchmark_summary.py``:

    python scripts/print_bench_summary.py BENCH_engine.json \
        --baseline previous/BENCH_engine.json

Comparison is cache-aware (:mod:`repro.engine.bench`): warm-replay
speedups and cache-state flips are labelled as such, and only genuine
compute slowdowns can fail the job.  The exit code is non-zero when any
**cold-path** benchmark (a run that did real compute, not a store
replay) regressed by more than ``--threshold`` (default 25%).  Without
a baseline — the first run, or an expired artifact — the script prints
the current numbers and exits 0.
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.bench import (  # noqa: E402
    BenchRecord,
    compare_baselines,
    functional_records,
    load_benchmark_json,
    replay_records,
)

#: Relative slowdown past which a cold-path benchmark fails the job.
DEFAULT_THRESHOLD = 0.25

_VERDICT_LABELS = {
    "compute-regression": ":red_circle: regression",
    "compute-improvement": ":green_circle: improvement",
    "stable": "stable",
    "cache-speedup": "cache speedup",
    "cache-cold": "cache cold",
    "new": "new",
    "missing": "missing",
}


def _fmt_seconds(value: float | None) -> str:
    return f"{value:.3f}" if value is not None else "-"


def _fmt_delta(ratio: float) -> str:
    if math.isnan(ratio):
        return "-"
    return f"{(ratio - 1):+.1%}"


def delta_table(old: dict[str, BenchRecord], new: dict[str, BenchRecord],
                threshold: float) -> tuple[str, list[str]]:
    """(markdown table, names of failing cold-path regressions)."""
    verdicts = compare_baselines(old, new, tolerance=threshold)
    lines = [
        "| benchmark | mode | baseline (s) | current (s) | delta | verdict |",
        "| --- | --- | --- | --- | ---: | --- |",
    ]
    failures = []
    for verdict in verdicts:
        old_mean = old[verdict.name].mean if verdict.name in old else None
        new_mean = new[verdict.name].mean if verdict.name in new else None
        mode = f"{verdict.old_mode}->{verdict.new_mode}"
        label = _VERDICT_LABELS.get(verdict.verdict, verdict.verdict)
        lines.append(
            f"| `{verdict.name}` | {mode} | {_fmt_seconds(old_mean)} | "
            f"{_fmt_seconds(new_mean)} | {_fmt_delta(verdict.ratio)} | "
            f"{label} |"
        )
        # Only cold-path compute regressions gate the job: a warm run
        # that slowed down is already classified against its own mode.
        if verdict.verdict == "compute-regression" \
                and verdict.new_mode != "warm":
            failures.append(verdict.name)
    return "\n".join(lines), failures


def replay_table(records: dict[str, BenchRecord],
                 baseline: dict[str, BenchRecord] | None) -> str:
    """Markdown replay-kernel throughput table with baseline deltas."""
    rows = replay_records(records)
    if not rows:
        return ""
    base_by_name = baseline or {}
    lines = [
        "",
        "### Replay-kernel throughput",
        "",
        "| machine | kernel | instrs/sec | vs baseline |",
        "| --- | --- | ---: | ---: |",
    ]
    for record in rows:
        info = record.replay
        prev = base_by_name.get(record.name)
        if prev is not None and prev.replay.get("instrs_per_sec"):
            ratio = info["instrs_per_sec"] / prev.replay["instrs_per_sec"]
            delta = f"{(ratio - 1):+.1%}"
        else:
            delta = "-"
        lines.append(
            f"| {info['machine']} | {info['kernel']} | "
            f"{info['instrs_per_sec']:,.0f} | {delta} |"
        )
    return "\n".join(lines)


def functional_table(records: dict[str, BenchRecord],
                     baseline: dict[str, BenchRecord] | None) -> str:
    """Markdown execution-engine throughput table with baseline deltas."""
    rows = functional_records(records)
    if not rows:
        return ""
    base_by_name = baseline or {}
    lines = [
        "",
        "### Functional-execution throughput",
        "",
        "| pair | engine | instrs/sec | vs baseline |",
        "| --- | --- | ---: | ---: |",
    ]
    for record in rows:
        info = record.functional
        prev = base_by_name.get(record.name)
        if prev is not None and prev.functional.get("instrs_per_sec"):
            ratio = info["instrs_per_sec"] / prev.functional["instrs_per_sec"]
            delta = f"{(ratio - 1):+.1%}"
        else:
            delta = "-"
        lines.append(
            f"| {info['pair']} | {info['engine']} | "
            f"{info['instrs_per_sec']:,.0f} | {delta} |"
        )
    return "\n".join(lines)


def build_summary(current_path: str, baseline_path: str | None,
                  threshold: float) -> tuple[str, list[str]]:
    current = load_benchmark_json(current_path)
    sections = ["## Engine benchmark trajectory", ""]
    failures: list[str] = []
    baseline = None
    if baseline_path and Path(baseline_path).is_file():
        baseline = load_benchmark_json(baseline_path)
        table, failures = delta_table(baseline, current, threshold)
        sections.append(table)
    else:
        sections.append("_No baseline artifact — first run or expired; "
                        "recording current numbers only._")
        sections.append("")
        sections.append("| benchmark | mode | current (s) |")
        sections.append("| --- | --- | ---: |")
        for name in sorted(current):
            record = current[name]
            sections.append(f"| `{name}` | {record.mode} | "
                            f"{_fmt_seconds(record.mean)} |")
    replay = replay_table(current, baseline)
    if replay:
        sections.append(replay)
    functional = functional_table(current, baseline)
    if functional:
        sections.append(functional)
    if failures:
        sections.append("")
        sections.append(f":rotating_light: **{len(failures)} cold-path "
                        f"regression(s) over {threshold:.0%}:** "
                        + ", ".join(f"`{name}`" for name in failures))
    return "\n".join(sections) + "\n", failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="this run's BENCH_engine.json")
    parser.add_argument("--baseline", default=None,
                        help="previous run's artifact (absent: no diff)")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="cold-path failure threshold "
                             "(default: %(default)s)")
    parser.add_argument("--output", default=None,
                        help="summary destination (default: "
                             "$GITHUB_STEP_SUMMARY, else stdout)")
    args = parser.parse_args(argv)

    summary, failures = build_summary(args.current, args.baseline,
                                      args.threshold)
    out_path = args.output or os.environ.get("GITHUB_STEP_SUMMARY")
    if out_path:
        with open(out_path, "a", encoding="utf-8") as handle:
            handle.write(summary)
    print(summary)
    if failures:
        print(f"FAIL: {len(failures)} cold-path regression(s) "
              f"over {args.threshold:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
