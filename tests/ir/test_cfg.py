"""CFG analysis tests: dominators, RPO, natural loops."""

from repro.ir.cfg import (
    ControlFlowGraph,
    compute_dominators,
    find_natural_loops,
    loop_of_block,
    reverse_postorder,
)
from repro.ir.instructions import (
    BasicBlockRef,
    Branch,
    Const,
    IRFunction,
    Jump,
    Ret,
    Temp,
    UnOp,
)


def _block(label: str, terminator) -> BasicBlockRef:
    return BasicBlockRef(label, [terminator])


def _branch_block(label: str, then_label: str, other_label: str) -> BasicBlockRef:
    cond = Temp(999, "i")
    return BasicBlockRef(
        label, [UnOp("mov", cond, Const(1)), Branch(cond, then_label, other_label)]
    )


def diamond() -> IRFunction:
    func = IRFunction("diamond", next_temp=1000)
    func.blocks = [
        _branch_block("entry", "left", "right"),
        _block("left", Jump("merge")),
        _block("right", Jump("merge")),
        _block("merge", Ret()),
    ]
    return func


def loop_function() -> IRFunction:
    func = IRFunction("loop", next_temp=1000)
    func.blocks = [
        _block("entry", Jump("head")),
        _branch_block("head", "body", "exit"),
        _block("body", Jump("head")),
        _block("exit", Ret()),
    ]
    return func


def nested_loops() -> IRFunction:
    func = IRFunction("nested", next_temp=1000)
    func.blocks = [
        _block("entry", Jump("outer")),
        _branch_block("outer", "inner", "exit"),
        _branch_block("inner", "inner_body", "outer_latch"),
        _block("inner_body", Jump("inner")),
        _block("outer_latch", Jump("outer")),
        _block("exit", Ret()),
    ]
    return func


class TestCFGBasics:
    def test_successors_and_predecessors(self):
        cfg = ControlFlowGraph(diamond())
        assert set(cfg.successors["entry"]) == {"left", "right"}
        assert set(cfg.predecessors["merge"]) == {"left", "right"}

    def test_reachable_excludes_orphans(self):
        func = diamond()
        func.blocks.append(_block("orphan", Ret()))
        cfg = ControlFlowGraph(func)
        assert "orphan" not in cfg.reachable()

    def test_rpo_starts_at_entry(self):
        cfg = ControlFlowGraph(diamond())
        order = reverse_postorder(cfg)
        assert order[0] == "entry"
        assert order[-1] == "merge"
        assert set(order) == {"entry", "left", "right", "merge"}

    def test_rpo_visits_before_successors_in_dag(self):
        cfg = ControlFlowGraph(diamond())
        order = reverse_postorder(cfg)
        assert order.index("entry") < order.index("left")
        assert order.index("left") < order.index("merge")


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg = ControlFlowGraph(diamond())
        dom = compute_dominators(cfg)
        for label in ("left", "right", "merge"):
            assert "entry" in dom[label]

    def test_sides_do_not_dominate_merge(self):
        cfg = ControlFlowGraph(diamond())
        dom = compute_dominators(cfg)
        assert "left" not in dom["merge"]
        assert "right" not in dom["merge"]

    def test_loop_header_dominates_body(self):
        cfg = ControlFlowGraph(loop_function())
        dom = compute_dominators(cfg)
        assert "head" in dom["body"]


class TestNaturalLoops:
    def test_simple_loop_found(self):
        loops = find_natural_loops(ControlFlowGraph(loop_function()))
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "head"
        assert loop.body == {"head", "body"}
        assert loop.back_edges == ["body"]

    def test_diamond_has_no_loops(self):
        assert find_natural_loops(ControlFlowGraph(diamond())) == []

    def test_nested_loop_structure(self):
        loops = find_natural_loops(ControlFlowGraph(nested_loops()))
        assert len(loops) == 2
        outer = next(lp for lp in loops if lp.header == "outer")
        inner = next(lp for lp in loops if lp.header == "inner")
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.body < outer.body
        assert outer.depth == 1
        assert inner.depth == 2

    def test_loop_of_block_innermost(self):
        loops = find_natural_loops(ControlFlowGraph(nested_loops()))
        inner = loop_of_block(loops, "inner_body")
        assert inner.header == "inner"
        outer = loop_of_block(loops, "outer_latch")
        assert outer.header == "outer"
        assert loop_of_block(loops, "exit") is None
