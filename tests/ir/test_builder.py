"""AST -> IR lowering tests."""

import pytest

from repro.ir.builder import lower_program
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Load,
    LoadConst,
    Print,
    Ret,
    Store,
    UnOp,
)
from repro.ir.verify import verify_program
from repro.lang.parser import parse_program
from repro.lang.semantics import analyze


def lower(source: str, promote: bool = False):
    program = parse_program(source)
    analyzer = analyze(program)
    ir = lower_program(program, analyzer, promote_scalars=promote)
    verify_program(ir)
    return ir


def instrs_of(ir, name="main"):
    return [i for blk in ir.functions[name].blocks for i in blk.instrs]


class TestO0Lowering:
    def test_scalar_locals_live_in_memory(self):
        ir = lower("int main() { int x = 3; return x + 1; }")
        ops = instrs_of(ir)
        assert any(isinstance(i, Store) for i in ops)
        assert any(isinstance(i, Load) for i in ops)

    def test_load_arith_store_shape(self):
        """The Table II pattern: x = y + 1 at O0 is ld/add/st."""
        ir = lower("int main() { int x = 0; int y = 5; x = y + 1; return x; }")
        ops = instrs_of(ir)
        kinds = [type(i).__name__ for i in ops]
        # Find the ld -> add -> st subsequence for the assignment.
        for i in range(len(ops) - 2):
            if (
                isinstance(ops[i], Load)
                and isinstance(ops[i + 1], BinOp)
                and ops[i + 1].op == "add"
                and isinstance(ops[i + 2], Store)
            ):
                break
        else:
            pytest.fail(f"no load-arith-store found in {kinds}")

    def test_params_spilled_to_slots(self):
        ir = lower("int f(int n) { return n; } int main() { return f(1); }")
        entry_ops = ir.functions["f"].blocks[0].instrs
        assert isinstance(entry_ops[0], Store)  # param saved to its slot


class TestPromotedLowering:
    def test_scalars_stay_in_registers(self):
        ir = lower("int main() { int x = 3; return x + 1; }", promote=True)
        ops = instrs_of(ir)
        assert not any(isinstance(i, Load) for i in ops)
        assert not any(isinstance(i, Store) for i in ops)

    def test_globals_still_in_memory(self):
        ir = lower("int g; int main() { g = 4; return g; }", promote=True)
        ops = instrs_of(ir)
        assert any(isinstance(i, Store) for i in ops)
        assert any(isinstance(i, Load) for i in ops)

    def test_arrays_still_in_memory(self):
        ir = lower(
            "int main() { int a[4]; a[0] = 1; return a[0]; }", promote=True
        )
        ops = instrs_of(ir)
        assert any(isinstance(i, Store) for i in ops)


class TestControlFlow:
    def test_if_creates_branch(self):
        ir = lower("int main() { if (1 < 2) { return 1; } return 0; }")
        ops = instrs_of(ir)
        assert any(isinstance(i, Branch) for i in ops)

    def test_short_circuit_and_creates_two_branches(self):
        ir = lower("int main() { int a = 1; int b = 2; if (a && b) { return 1; } return 0; }")
        branches = [i for i in instrs_of(ir) if isinstance(i, Branch)]
        assert len(branches) >= 2

    def test_while_loop_block_structure(self):
        ir = lower("int main() { int i = 0; while (i < 3) { i = i + 1; } return i; }")
        labels = [blk.label for blk in ir.functions["main"].blocks]
        assert any(label.startswith("while") for label in labels)
        assert any(label.startswith("body") for label in labels)

    def test_break_terminates_reachable_code(self):
        ir = lower(
            "int main() { while (1) { break; } return 7; }"
        )
        verify_program(ir)  # no dangling blocks

    def test_unreachable_code_after_return_dropped(self):
        ir = lower("int main() { return 1; int x = 2; return x; }")
        ops = instrs_of(ir)
        rets = [i for i in ops if isinstance(i, Ret)]
        assert len(rets) == 1


class TestOperatorSelection:
    def _find_binops(self, source):
        ir = lower(source)
        return [i.op for i in instrs_of(ir) if isinstance(i, BinOp)]

    def test_signed_division(self):
        assert "div" in self._find_binops(
            "int main() { int a = 7; int b = 2; return a / b; }"
        )

    def test_unsigned_division(self):
        assert "udiv" in self._find_binops(
            "int main() { unsigned a = 7u; unsigned b = 2u; return (int)(a / b); }"
        )

    def test_signed_right_shift_is_sar(self):
        assert "sar" in self._find_binops(
            "int main() { int a = -8; return a >> 1; }"
        )

    def test_unsigned_right_shift_is_shr(self):
        assert "shr" in self._find_binops(
            "int main() { unsigned a = 8u; return (int)(a >> 1); }"
        )

    def test_unsigned_comparison(self):
        assert "cmpltu" in self._find_binops(
            "int main() { unsigned a = 1u; unsigned b = 2u; return a < b; }"
        )

    def test_float_ops(self):
        ops = self._find_binops(
            "int main() { float a = 1.0; float b = 2.0; return (int)(a * b + a / b); }"
        )
        assert "fmul" in ops
        assert "fdiv" in ops
        assert "fadd" in ops

    def test_mixed_int_float_promotes(self):
        ops = self._find_binops(
            "int main() { float a = 1.0; return (int)(a + 1); }"
        )
        assert "fadd" in ops

    def test_call_lowering(self):
        ir = lower("int f(int x) { return x; } int main() { return f(3); }")
        calls = [i for i in instrs_of(ir) if isinstance(i, Call)]
        assert len(calls) == 1
        assert calls[0].func == "f"

    def test_printf_lowering(self):
        ir = lower('int main() { printf("%d", 42); return 0; }')
        prints = [i for i in instrs_of(ir) if isinstance(i, Print)]
        assert len(prints) == 1
        assert prints[0].fmt == "%d"


class TestGlobals:
    def test_global_layout_and_init(self):
        ir = lower("int a = 5; float f = 2.5; int t[3] = {1, 2}; "
                   "int main() { return a; }")
        assert ir.globals["a"].init == [5]
        assert ir.globals["f"].init == [2.5]
        assert ir.globals["t"].init == [1, 2, 0]

    def test_negative_global_init_wraps_unsigned(self):
        ir = lower("int a = -1; int main() { return a; }")
        assert ir.globals["a"].init == [0xFFFFFFFF]
