"""Property tests for the shared operator semantics (ops_eval).

These are the single source of truth for both the constant folder and
the interpreter, so they get their own exhaustive checks against
Python-as-ground-truth with explicit 32-bit wrapping.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.ir.ops_eval import (
    BINOPS,
    UNOPS,
    c_cos,
    c_exp,
    c_ftoi,
    c_log,
    c_sqrt,
    to_signed,
    to_unsigned,
)

WORD = 0xFFFFFFFF
u32 = st.integers(min_value=0, max_value=WORD)
nonzero_u32 = st.integers(min_value=1, max_value=WORD)


class TestConversions:
    @given(u32)
    @settings(max_examples=200, deadline=None)
    def test_signed_unsigned_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    def test_sign_boundaries(self):
        assert to_signed(0x7FFFFFFF) == 2**31 - 1
        assert to_signed(0x80000000) == -(2**31)
        assert to_signed(WORD) == -1
        assert to_unsigned(-1) == WORD


class TestIntegerBinops:
    @given(u32, u32)
    @settings(max_examples=200, deadline=None)
    def test_add_sub_inverse(self, a, b):
        total = BINOPS["add"](a, b)
        assert BINOPS["sub"](total, b) == a

    @given(u32, u32)
    @settings(max_examples=200, deadline=None)
    def test_xor_self_inverse(self, a, b):
        assert BINOPS["xor"](BINOPS["xor"](a, b), b) == a

    @given(u32, nonzero_u32)
    @settings(max_examples=200, deadline=None)
    def test_signed_division_identity(self, a, b):
        """C guarantees (a/b)*b + a%b == a (when defined)."""
        sa, sb = to_signed(a), to_signed(b)
        if sa == -(2**31) and sb == -1:
            return  # overflow case, UB in C
        q = to_signed(BINOPS["div"](a, b))
        r = to_signed(BINOPS["mod"](a, b))
        assert q * sb + r == sa
        assert abs(r) < abs(sb)

    @given(u32, nonzero_u32)
    @settings(max_examples=200, deadline=None)
    def test_unsigned_division_identity(self, a, b):
        q = BINOPS["udiv"](a, b)
        r = BINOPS["umod"](a, b)
        assert q * b + r == a
        assert r < b

    @given(u32, st.integers(0, 31))
    @settings(max_examples=200, deadline=None)
    def test_shift_roundtrip_low_bits(self, a, s):
        shifted = BINOPS["shl"](a, s)
        back = BINOPS["shr"](shifted, s)
        mask = WORD >> s
        assert back == (a & mask)

    @given(u32, st.integers(0, 31))
    @settings(max_examples=200, deadline=None)
    def test_sar_sign_fill(self, a, s):
        result = to_signed(BINOPS["sar"](a, s))
        assert result == to_signed(a) >> s

    @given(u32, u32)
    @settings(max_examples=100, deadline=None)
    def test_comparisons_consistent(self, a, b):
        assert BINOPS["cmplt"](a, b) == (1 if to_signed(a) < to_signed(b) else 0)
        assert BINOPS["cmpltu"](a, b) == (1 if a < b else 0)
        assert BINOPS["cmpeq"](a, b) == (1 if a == b else 0)
        # Trichotomy.
        assert (
            BINOPS["cmplt"](a, b) + BINOPS["cmpeq"](a, b) + BINOPS["cmpgt"](a, b)
            == 1
        )


class TestCMathSemantics:
    def test_sqrt_negative_is_nan(self):
        assert math.isnan(c_sqrt(-1.0))

    def test_sqrt_positive(self):
        assert c_sqrt(4.0) == 2.0

    def test_cos_infinity_is_nan(self):
        assert math.isnan(c_cos(float("inf")))

    def test_log_zero_is_neg_inf(self):
        assert c_log(0.0) == float("-inf")

    def test_log_negative_is_nan(self):
        assert math.isnan(c_log(-1.0))

    def test_exp_overflow_is_inf(self):
        assert c_exp(10000.0) == float("inf")

    def test_ftoi_truncates(self):
        assert to_signed(c_ftoi(-2.9)) == -2
        assert c_ftoi(2.9) == 2

    def test_ftoi_nan_sentinel(self):
        assert c_ftoi(float("nan")) == 0x80000000
        assert c_ftoi(float("inf")) == 0x80000000

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_ftoi_matches_c_truncation(self, value):
        assert to_signed(c_ftoi(value)) == int(value)

    def test_fdiv_by_zero_gives_inf(self):
        assert BINOPS["fdiv"](1.0, 0.0) == float("inf")
        assert BINOPS["fdiv"](-1.0, 0.0) == float("-inf")
        assert math.isnan(BINOPS["fdiv"](0.0, 0.0))


class TestUnops:
    @given(u32)
    @settings(max_examples=100, deadline=None)
    def test_neg_involution(self, a):
        assert UNOPS["neg"](UNOPS["neg"](a)) == a

    @given(u32)
    @settings(max_examples=100, deadline=None)
    def test_not_involution(self, a):
        assert UNOPS["not"](UNOPS["not"](a)) == a

    @given(u32)
    @settings(max_examples=100, deadline=None)
    def test_lognot_boolean(self, a):
        assert UNOPS["lognot"](a) == (0 if a else 1)

    def test_absi_most_negative(self):
        # |INT_MIN| wraps back to INT_MIN on hardware... our absi keeps
        # the Python value masked to 32 bits.
        assert UNOPS["absi"](0x80000000) == 0x80000000
