"""Results-DB round-trip, cross-run queries, ranking, compare, Pareto."""

import pytest

from repro.explore.db import (
    ResultRecord,
    ResultsDB,
    pareto_front,
    result_key,
)


def record(key="k", sweep="s", score=0.5, point=None, metrics=None,
           created=1000.0):
    return ResultRecord(
        key=key,
        sweep=sweep,
        created_at=created,
        point=point or {"width": 2, "opt_level": 0},
        metrics=metrics or {"cpi_err": score, "org_runtime_s": 1.0},
        score=score,
    )


@pytest.fixture
def db(tmp_path):
    with ResultsDB(tmp_path / "results.sqlite3") as handle:
        yield handle


class TestRoundTrip:
    def test_put_get_preserves_everything(self, db):
        original = record(point={"isa": "ia64", "width": 4},
                          metrics={"cpi_err": 0.1, "miss": 0.02})
        db.put(original)
        loaded = db.get("k")
        assert loaded == original

    def test_get_missing_returns_none(self, db):
        assert db.get("absent") is None

    def test_put_same_key_upserts(self, db):
        db.put(record(score=0.5))
        db.put(record(score=0.9))
        assert db.get("k").score == 0.9
        assert len(db.query()) == 1

    def test_cross_run_round_trip(self, tmp_path):
        """A second handle on the same path sees the first run's rows."""
        path = tmp_path / "cross.sqlite3"
        with ResultsDB(path) as first:
            first.put(record(key="a", sweep="run1"))
        with ResultsDB(path) as second:
            rows = second.query(sweep="run1")
            assert [r.key for r in rows] == ["a"]


class TestQuery:
    def test_query_filters_by_sweep(self, db):
        db.put(record(key="a", sweep="one"))
        db.put(record(key="b", sweep="two"))
        assert [r.key for r in db.query(sweep="one")] == ["a"]
        assert len(db.query()) == 2

    def test_where_matches_axis_values(self, db):
        db.put(record(key="a", point={"width": 2, "isa": "x86"}))
        db.put(record(key="b", point={"width": 4, "isa": "x86"}))
        assert [r.key for r in db.query(where={"width": 2})] == ["a"]
        # CLI-style string values coerce.
        assert [r.key for r in db.query(where={"width": "4"})] == ["b"]
        assert db.query(where={"width": 8}) == []
        assert db.query(where={"no_such_axis": 1}) == []

    def test_where_matches_pair_axis_in_cli_rendering(self, db):
        # 'pair' round-trips through JSON as a list; the CLI renders
        # (and accepts) workload/input.
        db.put(record(key="p", point={"pair": ["adpcm", "small"],
                                      "opt_level": 0}))
        assert [r.key for r in db.query(where={"pair": "adpcm/small"})] \
            == ["p"]
        assert db.query(where={"pair": "crc32/small"}) == []

    def test_sweeps_lists_counts(self, db):
        db.put(record(key="a", sweep="one", created=5.0))
        db.put(record(key="b", sweep="one", created=9.0))
        db.put(record(key="c", sweep="two", created=7.0))
        assert db.sweeps() == [("one", 2, 9.0), ("two", 1, 7.0)]

    def test_delete_sweep(self, db):
        db.put(record(key="a", sweep="gone"))
        db.put(record(key="b", sweep="kept"))
        assert db.delete_sweep("gone") == 1
        assert [r.sweep for r in db.query()] == ["kept"]


class TestRank:
    def test_rank_orders_by_score_ascending(self, db):
        db.put(record(key="worst", score=0.9))
        db.put(record(key="best", score=0.1))
        db.put(record(key="mid", score=0.5))
        assert [r.key for r in db.rank()] == ["best", "mid", "worst"]

    def test_rank_by_named_metric_with_limit(self, db):
        db.put(record(key="a", metrics={"cpi_err": 0.3}))
        db.put(record(key="b", metrics={"cpi_err": 0.1}))
        db.put(record(key="c", metrics={"cpi_err": 0.2}))
        assert [r.key for r in db.rank(metric="cpi_err", limit=2)] == \
            ["b", "c"]

    def test_rank_descending(self, db):
        db.put(record(key="a", score=0.1))
        db.put(record(key="b", score=0.9))
        assert [r.key for r in db.rank(ascending=False)] == ["b", "a"]

    def test_unknown_metric_raises(self, db):
        db.put(record())
        with pytest.raises(KeyError, match="unknown metric"):
            db.rank(metric="nope")

    def test_records_missing_the_metric_rank_last(self, db):
        # A degenerate point's undefined relative error is dropped at
        # scoring time; ranking on that metric must not abort.
        db.put(record(key="a", metrics={"cpi_err": 0.3}))
        db.put(record(key="degenerate", metrics={"miss_rate_err": 0.1}))
        db.put(record(key="b", metrics={"cpi_err": 0.1}))
        assert [r.key for r in db.rank(metric="cpi_err")] == \
            ["b", "a", "degenerate"]
        assert [r.key for r in db.rank(metric="cpi_err",
                                       ascending=False)] == \
            ["a", "b", "degenerate"]


class TestCompare:
    def test_compare_matches_points_across_sweeps(self, db):
        db.put(record(key="a1", sweep="left", point={"width": 2},
                      score=0.5))
        db.put(record(key="a2", sweep="right", point={"width": 2},
                      score=0.3))
        db.put(record(key="b1", sweep="left", point={"width": 4},
                      score=0.7))
        matched = db.compare("left", "right")
        assert matched == [({"width": 2}, 0.5, 0.3)]

    def test_compare_skips_points_missing_the_metric(self, db):
        db.put(record(key="a1", sweep="left", point={"width": 2},
                      metrics={"cpi_err": 0.5}))
        db.put(record(key="a2", sweep="right", point={"width": 2},
                      metrics={"miss_rate_err": 0.1}))  # no cpi_err
        db.put(record(key="b1", sweep="left", point={"width": 4},
                      metrics={"cpi_err": 0.7}))
        db.put(record(key="b2", sweep="right", point={"width": 4},
                      metrics={"cpi_err": 0.6}))
        matched = db.compare("left", "right", metric="cpi_err")
        assert matched == [({"width": 4}, 0.7, 0.6)]


class TestKeyRecipe:
    def test_key_is_order_insensitive_and_content_sensitive(self):
        base = result_key({"width": 2, "isa": "x86"}, ("f1", "f2"), 100,
                          "tc")
        assert base == result_key({"isa": "x86", "width": 2},
                                  ("f1", "f2"), 100, "tc")
        assert base != result_key({"isa": "x86", "width": 4},
                                  ("f1", "f2"), 100, "tc")
        assert base != result_key({"width": 2, "isa": "x86"},
                                  ("f1",), 100, "tc")
        assert base != result_key({"width": 2, "isa": "x86"},
                                  ("f1", "f2"), 200, "tc")
        assert base != result_key({"width": 2, "isa": "x86"},
                                  ("f1", "f2"), 100, "other")
        # The sweep label is part of the identity: a renamed sweep is
        # scored (and diffable) on its own.
        assert base != result_key({"width": 2, "isa": "x86"},
                                  ("f1", "f2"), 100, "tc", sweep="named")


class TestPareto:
    def test_front_keeps_only_nondominated(self):
        fast_bad = record(key="fast_bad", score=0.9,
                          metrics={"org_runtime_s": 1.0})
        slow_good = record(key="slow_good", score=0.1,
                           metrics={"org_runtime_s": 5.0})
        dominated = record(key="dominated", score=0.95,
                           metrics={"org_runtime_s": 2.0})
        front = pareto_front([fast_bad, slow_good, dominated])
        assert [r.key for r in front] == ["fast_bad", "slow_good"]

    def test_record_missing_a_metric_is_skipped_not_fatal(self):
        # Possible since undefined relative-error components are
        # dropped at scoring time: the front must warn and skip,
        # consistent with rank/compare, instead of raising KeyError.
        ok = record(key="ok", score=0.5,
                    metrics={"cpi_err": 0.5, "org_runtime_s": 1.0})
        degenerate = record(key="degenerate", score=0.1,
                            metrics={"miss_rate_err": 0.1})
        with pytest.warns(RuntimeWarning, match="Pareto front"):
            front = pareto_front([ok, degenerate])
        assert [r.key for r in front] == ["ok"]

    def test_all_records_missing_the_metric_yields_empty_front(self):
        degenerate = record(key="d", metrics={"miss_rate_err": 0.1})
        with pytest.warns(RuntimeWarning):
            assert pareto_front([degenerate]) == []


class TestRounds:
    def test_rounds_and_searches_parse_round_labels(self, db):
        db.put(record(key="a", sweep="s/round-0", score=0.5,
                      created=1.0))
        db.put(record(key="b", sweep="s/round-0", score=0.4,
                      created=2.0))
        db.put(record(key="c", sweep="s/round-1", score=0.2,
                      created=3.0))
        db.put(record(key="d", sweep="plain-sweep", score=0.1))
        assert db.searches() == ["s"]
        # Manually-built records carry no pairs_scored metric -> scope
        # is unknown (None).
        assert db.rounds("s") == [
            (0, "s/round-0", 2, 0.4, 2.0, None),
            (1, "s/round-1", 1, 0.2, 3.0, None),
        ]
        assert db.rounds("absent") == []

    def test_rounds_report_the_scoring_scope(self, db):
        db.put(record(key="a", sweep="s/round-0", score=0.1,
                      metrics={"cpi_err": 0.1, "pairs_scored": 1}))
        db.put(record(key="b", sweep="s/round-1", score=0.3,
                      metrics={"cpi_err": 0.3, "pairs_scored": 5}))
        assert [(idx, pairs) for idx, _, _, _, _, pairs
                in db.rounds("s")] == [(0, 1), (1, 5)]


class TestStageCosts:
    def test_record_and_history_round_trip(self, db):
        db.record_stage_cost("compile", 1.5, toolchain="t" * 8)
        db.record_stage_cost("compile", 2.5)
        db.record_stage_cost("replay", 0.01)
        history = db.stage_cost_history("compile")
        assert [(s, sec) for s, sec, _ in history] == \
            [("compile", 1.5), ("compile", 2.5)]

    def test_history_is_oldest_first_with_recent_limit(self, db):
        for index in range(5):
            db.record_stage_cost("run", float(index))
        history = db.stage_cost_history("run", limit=2)
        assert [seconds for _, seconds, _ in history] == [3.0, 4.0]

    def test_batch_record(self, db):
        recorded = db.record_stage_costs(
            [("compile", 1.0), ("run", 2.0)], toolchain="abc")
        assert recorded == 2
        assert len(db.stage_cost_history()) == 2

    def test_stats_aggregate(self, db):
        db.record_stage_costs([("compile", 1.0), ("compile", 3.0)])
        stats = db.stage_cost_stats()
        assert stats["compile"]["n"] == 2
        assert stats["compile"]["mean_seconds"] == pytest.approx(2.0)
        assert stats["compile"]["last_seconds"] == pytest.approx(3.0)

    def test_empty_stats(self, db):
        assert db.stage_cost_stats() == {}

    def test_costs_survive_reopen(self, tmp_path):
        path = tmp_path / "persist.sqlite3"
        with ResultsDB(path) as first:
            first.record_stage_cost("synthesize", 4.0)
        with ResultsDB(path) as second:
            assert len(second.stage_cost_history("synthesize")) == 1


class TestSharedAccess:
    """The daemon and the CLI open the same file concurrently."""

    def test_wal_mode_and_busy_timeout(self, tmp_path):
        with ResultsDB(tmp_path / "wal.sqlite3") as db:
            mode = db._conn.execute("PRAGMA journal_mode").fetchone()[0]
            timeout = db._conn.execute("PRAGMA busy_timeout").fetchone()[0]
        assert mode == "wal"
        assert timeout == 10_000

    def test_two_connections_interleave_writes(self, tmp_path):
        path = tmp_path / "shared.sqlite3"
        with ResultsDB(path) as writer, ResultsDB(path) as other:
            writer.put(record(key="w1", sweep="shared"))
            other.put(record(key="w2", sweep="shared"))
            other.record_stage_cost("compile", 1.0)
            writer.record_stage_cost("compile", 2.0)
            assert {r.key for r in writer.query(sweep="shared")} == \
                {"w1", "w2"}
            assert len(other.stage_cost_history("compile")) == 2

    def test_concurrent_writers_queue_not_fail(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        path = tmp_path / "race.sqlite3"

        def hammer(tag):
            with ResultsDB(path) as db:
                for index in range(20):
                    db.record_stage_cost(f"stage-{tag}", float(index))
            return True

        with ThreadPoolExecutor(4) as pool:
            assert all(pool.map(hammer, range(4)))
        with ResultsDB(path) as db:
            assert len(db.stage_cost_history()) == 80
