"""Design-space declaration, enumeration, sampling, presets."""

import pytest

from repro.explore.space import (
    Axis,
    DesignPoint,
    DesignSpace,
    PRESETS,
    get_preset,
)

SPACE = DesignSpace(
    name="unit",
    axes=(
        Axis("width", (2, 3, 4)),
        Axis("opt_level", (0, 2)),
    ),
    base={"isa": "x86_64", "l1_kb": 16},
)


class TestEnumeration:
    def test_size_is_the_axis_product(self):
        assert SPACE.size == 6

    def test_points_are_deterministic_and_ordered(self):
        first = SPACE.points()
        second = SPACE.points()
        assert first == second
        # Cartesian product in axis order: width varies slowest.
        assert [p["width"] for p in first] == [2, 2, 3, 3, 4, 4]
        assert [p["opt_level"] for p in first] == [0, 2, 0, 2, 0, 2]

    def test_points_merge_base_under_swept_values(self):
        point = SPACE.points()[0]
        assert point.as_dict() == {
            "isa": "x86_64", "l1_kb": 16, "width": 2, "opt_level": 0,
        }
        assert point.swept() == {"width": 2, "opt_level": 0}

    def test_swept_value_overrides_base(self):
        space = DesignSpace(
            name="override", axes=(Axis("l1_kb", (8,)),), base={"l1_kb": 64},
        )
        assert space.points()[0]["l1_kb"] == 8

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Axis("width", (2, 2))

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            DesignSpace(name="bad",
                        axes=(Axis("w", (1,)), Axis("w", (2,))))


class TestSampling:
    def test_grid_stride_and_cap(self):
        assert SPACE.sample("grid") == SPACE.points()
        assert SPACE.sample("grid", stride=2) == SPACE.points()[::2]
        assert SPACE.sample("grid", n=2) == SPACE.points()[:2]

    def test_random_is_seed_deterministic(self):
        a = SPACE.sample("random", n=3, seed=7)
        b = SPACE.sample("random", n=3, seed=7)
        assert a == b
        assert len(a) == 3
        assert all(p in SPACE.points() for p in a)

    def test_random_different_seed_may_differ_but_stays_in_space(self):
        points = SPACE.sample("random", n=4, seed=1)
        assert len(points) == len(set(points)) == 4

    def test_random_without_cap_returns_everything(self):
        assert SPACE.sample("random", seed=3) == SPACE.points()

    def test_frontier_returns_the_corners(self):
        corners = SPACE.sample("frontier")
        # 2 extremes of width x 2 extremes of opt_level.
        assert len(corners) == 4
        widths = {p["width"] for p in corners}
        assert widths == {2, 4}

    def test_frontier_dedups_single_value_axes(self):
        space = DesignSpace(
            name="thin", axes=(Axis("width", (2,)), Axis("opt_level", (0, 3)))
        )
        assert len(space.sample("frontier")) == 2

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown sampling mode"):
            SPACE.sample("sobol")

    def test_nonpositive_n_selects_nothing(self):
        # Uniform across modes: an empty selection, not an opaque
        # ValueError out of rng.sample.
        assert SPACE.sample("grid", n=0) == []
        assert SPACE.sample("frontier", n=0) == []
        assert SPACE.sample("random", n=0) == []
        assert SPACE.sample("random", n=-3) == []

    def test_seed_rejected_for_modes_that_would_ignore_it(self):
        with pytest.raises(ValueError, match="seed"):
            SPACE.sample("grid", seed=7)
        with pytest.raises(ValueError, match="seed"):
            SPACE.sample("frontier", seed=7)

    def test_stride_rejected_outside_grid(self):
        with pytest.raises(ValueError, match="stride"):
            SPACE.sample("random", n=2, stride=2)
        with pytest.raises(ValueError, match="stride"):
            SPACE.sample("frontier", stride=2)

    def test_stride_below_one_rejected(self):
        with pytest.raises(ValueError, match="stride"):
            SPACE.sample("grid", stride=0)

    def test_grid_caps_after_striding(self):
        # The documented order: stride first, then the n cap.
        assert SPACE.sample("grid", stride=2, n=2) == \
            SPACE.points()[::2][:2]


class TestDesignPoint:
    def test_machine_spec_from_axes(self):
        point = SPACE.points()[0]
        spec = point.machine_spec()
        assert spec.isa == "x86_64"
        assert spec.width == 2
        assert spec.l1_kb == 16

    def test_machine_axis_resolves_table3_spec(self):
        point = DesignPoint.from_dicts({"machine": "Core 2",
                                        "opt_level": 1})
        spec = point.machine_spec()
        assert spec.name == "Core 2"
        assert spec.width == 3
        assert point.opt_level == 1

    def test_machine_axis_with_override(self):
        point = DesignPoint.from_dicts({"machine": "Core 2", "width": 8})
        assert point.machine_spec().width == 8

    def test_unknown_machine_name_rejected(self):
        point = DesignPoint.from_dicts({"machine": "Cray-1"})
        with pytest.raises(KeyError, match="Cray-1"):
            point.machine_spec()

    def test_misspelled_axis_rejected_not_silently_defaulted(self):
        # 'rob_size' is not the MachineSpec field ('rob'): lowering must
        # fail loudly, not sweep identical default machines.
        point = DesignPoint.from_dicts({"rob_size": 256, "opt_level": 0})
        with pytest.raises(KeyError, match="rob_size"):
            point.machine_spec()

    def test_pair_axis_parses_string_and_tuple(self):
        assert DesignPoint.from_dicts({"pair": "fft/large"}).pair == \
            ("fft", "large")
        assert DesignPoint.from_dicts({"pair": "fft"}).pair == \
            ("fft", "small")
        assert DesignPoint.from_dicts({"pair": ("sha", "small")}).pair == \
            ("sha", "small")
        assert DesignPoint.from_dicts({"width": 2}).pair is None

    def test_label_shows_only_swept_axes(self):
        point = SPACE.points()[0]
        assert point.label() == "opt_level=0 width=2"

    def test_points_hash_by_value(self):
        assert SPACE.points()[0] == SPACE.points()[0]
        assert len(set(SPACE.points() + SPACE.points())) == SPACE.size


class TestPresets:
    def test_expected_presets_exist(self):
        assert {"smoke", "isa-opt", "table3", "microarch"} <= set(PRESETS)

    def test_preset_sizes(self):
        assert get_preset("smoke").space.size == 4
        assert get_preset("isa-opt").space.size == 12
        assert get_preset("table3").space.size == 20
        assert get_preset("microarch").space.size == 18

    def test_every_preset_point_lowers_to_a_machine(self):
        for preset in PRESETS.values():
            for point in preset.space.points():
                machine = point.machine()
                assert machine.timing.width >= 1
            assert preset.pairs

    def test_isa_opt_preset_covers_the_wider_grid(self):
        points = get_preset("isa-opt").space.points()
        coords = {(p["isa"], p["opt_level"]) for p in points}
        assert coords == {(isa, lvl)
                          for isa in ("x86", "x86_64", "ia64")
                          for lvl in (0, 1, 2, 3)}

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError, match="nope"):
            get_preset("nope")


class TestWorkloadAxis:
    def test_workload_axis_lowers_to_a_pair(self):
        point = DesignPoint.from_dicts({"workload": "crc32"})
        assert point.pair == ("crc32", "small")
        point = DesignPoint.from_dicts({"workload": "fft", "input": "large"})
        assert point.pair == ("fft", "large")

    def test_explicit_pair_axis_wins_over_workload(self):
        point = DesignPoint.from_dicts({"pair": "sha/small",
                                        "workload": "crc32"})
        assert point.pair == ("sha", "small")

    def test_workload_axis_excluded_from_machine_spec(self):
        point = DesignPoint.from_dicts({
            "workload": "synth:s1-int-f64-d1-t4-e20-c1",
            "input": "small", "opt_level": 2, "width": 4,
        })
        assert point.machine_spec().width == 4

    def test_synth_mix_preset_sweeps_generated_workloads(self):
        preset = get_preset("synth-mix")
        assert preset.space.size == 6  # 3 mixes x 2 opt levels
        from repro.workloads import get_workload

        for point in preset.space.points():
            workload, input_name = point.pair
            assert workload.startswith("synth:")
            # Every swept name resolves through the registry (what a
            # shard worker with a private store would do).
            assert get_workload(workload).inputs[0] == input_name == "small"

    def test_synth_mix_pairs_match_the_swept_axis(self):
        preset = get_preset("synth-mix")
        swept = {point.pair for point in preset.space.points()}
        assert swept == set(preset.pairs)
