"""Adaptive search: strategies, budget, round persistence, DB resume."""

import math

import pytest

from repro.engine.api import Engine
from repro.explore import sweep as sweep_mod
from repro.explore.db import ResultsDB, parse_round_label, round_label
from repro.explore.search import (
    HillClimbStrategy,
    STRATEGIES,
    SearchContext,
    SuccessiveHalvingStrategy,
    get_strategy,
    run_search,
)
from repro.explore.space import Axis, DesignPoint, DesignSpace, Preset, \
    get_preset
from repro.explore.sweep import run_sweep
from repro.explore.sweep import score_point as real_score_point

PAIRS = (("crc32", "small"), ("adpcm", "small"))

#: 1-axis-dominant synthetic space: ``width`` drives the score toward a
#: known interior optimum (width=4, opt_level=2); ``opt_level`` is a
#: small tie-breaking ripple.  24 points.
DOMINANT = Preset(
    DesignSpace(
        name="dominant",
        axes=(
            Axis("width", (1, 2, 3, 4, 5, 6)),
            Axis("opt_level", (0, 1, 2, 3)),
        ),
        base={"isa": "x86", "l1_kb": 8},
    ),
    PAIRS,
)

OPTIMUM = {"width": 4, "opt_level": 2}


def synthetic_score(point, pairs, engine):
    """Deterministic stand-in for ``score_point``: distance from the
    known optimum, dominated by the width axis."""
    err = abs(point["width"] - OPTIMUM["width"]) \
        + 0.01 * abs(point["opt_level"] - OPTIMUM["opt_level"])
    return {
        "org_cpi": 1.0, "syn_cpi": 1.0 + err, "cpi_err": err,
        "miss_rate_err": err, "branch_acc_err": err,
        "org_runtime_s": 1.0, "syn_runtime_s": 0.1,
        "org_instructions": 1000, "syn_instructions": 100,
        "score": err,
    }


class FakeEngine:
    """Engine stand-in counting warm() batches (the real engine is
    exercised by the sweep tests and the CLI search smoke)."""

    target_instructions = 1000

    def __init__(self):
        self.warm_calls = 0
        self.warmed_points = 0

    def warm(self, pairs, coords=(), machine_points=(), workers=None,
             backend=None):
        self.warm_calls += 1
        self.warmed_points += len(tuple(machine_points))
        return 0


@pytest.fixture
def db(tmp_path):
    with ResultsDB(tmp_path / "search.sqlite3") as handle:
        yield handle


@pytest.fixture(autouse=True)
def _synthetic_scoring(monkeypatch):
    monkeypatch.setattr(sweep_mod, "score_point", synthetic_score)


class TestRoundLabels:
    def test_round_label_round_trips(self):
        assert round_label("my-search", 3) == "my-search/round-3"
        assert parse_round_label("my-search/round-3") == ("my-search", 3)

    def test_parse_rejects_ordinary_sweeps(self):
        assert parse_round_label("smoke") is None
        assert parse_round_label("smoke/round-x") is None
        assert parse_round_label("/round-1") is None


class TestStrategyRegistry:
    def test_both_strategies_registered(self):
        assert set(STRATEGIES) >= {"hill", "halving"}
        assert isinstance(get_strategy("hill"), HillClimbStrategy)
        assert isinstance(get_strategy("halving"),
                          SuccessiveHalvingStrategy)

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="unknown search strategy"):
            get_strategy("bayes")


class TestNeighbors:
    def test_one_axis_steps_only(self, db):
        ctx = SearchContext(DOMINANT, "s", budget=1, seed=0,
                            engine=FakeEngine(), db=db)
        point = DesignPoint.from_dicts({"width": 3, "opt_level": 0},
                                       DOMINANT.space.base)
        steps = {tuple(sorted(p.swept().items()))
                 for p in ctx.neighbors(point)}
        assert steps == {
            (("opt_level", 0), ("width", 2)),
            (("opt_level", 0), ("width", 4)),
            (("opt_level", 1), ("width", 3)),
        }

    def test_interior_point_has_steps_both_ways(self, db):
        ctx = SearchContext(DOMINANT, "s", budget=1, seed=0,
                            engine=FakeEngine(), db=db)
        point = DesignPoint.from_dicts({"width": 4, "opt_level": 2},
                                       DOMINANT.space.base)
        assert len(ctx.neighbors(point)) == 4


class TestHillClimb:
    def test_finds_the_known_optimum(self, db):
        result = run_search(DOMINANT, strategy="hill", budget=20, seed=0,
                            engine=FakeEngine(), db=db)
        best = result.best
        assert best is not None
        assert best.point["width"] == OPTIMUM["width"]
        assert best.score < 1.0  # reached the dominant axis optimum

    def test_beats_a_random_sample_of_equal_budget(self, db):
        budget = 8
        result = run_search(DOMINANT, strategy="hill", budget=budget,
                            seed=0, engine=FakeEngine(), db=db)
        sample = DOMINANT.space.sample("random", n=budget, seed=0)
        sample_best = min(
            synthetic_score(p, PAIRS, None)["score"] for p in sample
        )
        assert result.best.score <= sample_best

    def test_respects_the_budget(self, db):
        result = run_search(DOMINANT, strategy="hill", budget=5, seed=0,
                            engine=FakeEngine(), db=db)
        assert result.evaluated == 5

    def test_covers_small_spaces_entirely(self, db):
        tiny = Preset(
            DesignSpace(name="tiny", axes=(Axis("width", (2, 4)),),
                        base={"isa": "x86", "opt_level": 0}),
            PAIRS,
        )
        result = run_search(tiny, strategy="hill", budget=8, seed=0,
                            engine=FakeEngine(), db=db)
        # Budget exceeds the space: every point evaluated exactly once.
        assert result.evaluated == tiny.space.size
        assert result.best.score == min(
            synthetic_score(p, PAIRS, None)["score"]
            for p in tiny.space.points()
        )

    def test_budget_must_be_positive(self, db):
        with pytest.raises(ValueError, match="budget"):
            run_search(DOMINANT, budget=0, engine=FakeEngine(), db=db)


class TestSuccessiveHalving:
    def test_finds_the_known_optimum(self, db):
        result = run_search(DOMINANT, strategy="halving", budget=24,
                            seed=0, engine=FakeEngine(), db=db)
        assert result.best.point["width"] == OPTIMUM["width"]

    def test_cohort_scores_on_the_first_pair_only(self, db):
        result = run_search(DOMINANT, strategy="halving", budget=9,
                            seed=0, engine=FakeEngine(), db=db)
        purposes = [r.purpose for r in result.rounds]
        assert purposes[0] == "cohort"
        assert "promote" in purposes
        cohort = result.rounds[0]
        promote = result.rounds[purposes.index("promote")]
        assert cohort.pairs == PAIRS[:1]
        assert promote.pairs == PAIRS
        # ~2:1 budget split between screening and promotion.
        assert len(cohort.sweep.records) == 6
        assert len(promote.sweep.records) == 3

    def test_single_pair_preset_degenerates_to_one_rung(self, db):
        single = Preset(DOMINANT.space, PAIRS[:1])
        result = run_search(single, strategy="halving", budget=6, seed=0,
                            engine=FakeEngine(), db=db)
        assert all(r.pairs == PAIRS[:1] for r in result.rounds)
        assert all(r.purpose == "cohort" for r in result.rounds)
        assert result.evaluated == 6

    def test_pair_pinned_space_degenerates_to_one_rung(self, db):
        # Points with a 'pair' axis score on their pinned pair no
        # matter what pair set the sweep passes; a reduced-pair cohort
        # rung would just re-evaluate identical measurements, so the
        # strategy must not spend budget on one.
        pinned = Preset(
            DesignSpace(
                name="pinned",
                axes=(Axis("pair", ("crc32/small", "adpcm/small")),
                      Axis("opt_level", (0, 2))),
                base={"isa": "x86", "width": 2},
            ),
            PAIRS,
        )
        result = run_search(pinned, strategy="halving", budget=4, seed=0,
                            engine=FakeEngine(), db=db)
        assert all(r.purpose == "cohort" for r in result.rounds)
        assert all(r.pairs == PAIRS for r in result.rounds)

    def test_best_comes_from_full_pair_rounds(self, db):
        result = run_search(DOMINANT, strategy="halving", budget=9,
                            seed=0, engine=FakeEngine(), db=db)
        assert result.best.sweep in {
            r.label for r in result.full_rounds()
        }


class TestRoundPersistence:
    def test_rounds_are_labeled_sweeps_in_the_db(self, db):
        result = run_search(DOMINANT, strategy="hill", budget=6, seed=0,
                            engine=FakeEngine(), db=db,
                            search_name="trail")
        assert [r.label for r in result.rounds] == \
            [f"trail/round-{i}" for i in range(len(result.rounds))]
        stored = db.rounds("trail")
        assert [(idx, label) for idx, label, *_ in stored] == \
            [(r.index, r.label) for r in result.rounds]
        assert db.searches() == ["trail"]
        # Each round's best and pair scope match the DB aggregates.
        for (idx, _, count, best, _, pairs), rnd in zip(stored,
                                                        result.rounds):
            assert count == len(rnd.sweep.records)
            assert best == pytest.approx(rnd.best.score)
            assert pairs == len(rnd.pairs)

    def test_reissued_search_resumes_every_round_with_zero_warms(
            self, db):
        first_engine = FakeEngine()
        first = run_search(DOMINANT, strategy="hill", budget=10, seed=3,
                           engine=first_engine, db=db)
        assert first_engine.warm_calls == len(first.rounds)

        rerun_engine = FakeEngine()
        rerun = run_search(DOMINANT, strategy="hill", budget=10, seed=3,
                           engine=rerun_engine, db=db)
        # Identical trajectory, answered entirely from the DB: zero
        # engine misses means run_sweep never even called warm().
        assert rerun_engine.warm_calls == 0
        assert rerun.resumed == first.evaluated
        assert rerun.computed == 0
        assert [r.label for r in rerun.rounds] == \
            [r.label for r in first.rounds]
        assert rerun.best.key == first.best.key

    def test_different_seeds_use_disjoint_round_trails(self, db):
        run_search(DOMINANT, strategy="hill", budget=4, seed=0,
                   engine=FakeEngine(), db=db)
        run_search(DOMINANT, strategy="hill", budget=4, seed=1,
                   engine=FakeEngine(), db=db)
        assert db.searches() == ["dominant-hill-s0", "dominant-hill-s1"]

    def test_search_tolerates_failed_points(self, db, monkeypatch):
        def flaky(point, pairs, engine):
            if point["width"] == 2:
                raise RuntimeError("boom")
            return synthetic_score(point, pairs, engine)

        monkeypatch.setattr(sweep_mod, "score_point", flaky)
        with pytest.warns(RuntimeWarning, match="failed"):
            result = run_search(DOMINANT, strategy="hill", budget=24,
                                seed=0, engine=FakeEngine(), db=db)
        # Failed points consume budget but never become the best.
        assert result.evaluated == 24
        assert result.best.point["width"] != 2

    def test_trace_table_renders(self, db):
        result = run_search(DOMINANT, strategy="halving", budget=9,
                            seed=0, engine=FakeEngine(), db=db)
        table = result.format_table()
        assert "Adaptive search" in table
        assert "cohort" in table and "promote" in table
        assert "best so far" in table


class TestRealEngineAcceptance:
    """The ISSUE acceptance criterion, through the real engine."""

    @pytest.fixture(autouse=True)
    def _real_scoring(self, monkeypatch):
        monkeypatch.setattr(sweep_mod, "score_point", real_score_point)

    def test_hill_budget8_seed0_matches_an_8_point_random_sample(
            self, db):
        preset = get_preset("smoke")
        engine = Engine()
        result = run_search(preset, strategy="hill", budget=8, seed=0,
                            engine=engine, db=db)
        assert db.searches() == ["smoke-hill-s0"]
        assert len(db.rounds("smoke-hill-s0")) == len(result.rounds)
        # At least as good as an equal-budget random sample of the same
        # space (budget covers the whole 4-point space, so both find
        # the global optimum).
        sampled = preset.space.sample("random", n=8, seed=0)
        sample = run_sweep(preset, engine=engine, db=db, points=sampled,
                           sweep_name="smoke-sample")
        assert result.best.score <= min(r.score for r in sample.records)

        # A re-issued search resumes every round from the DB with zero
        # engine work — no compiles, no runs, no replays.
        rerun_engine = Engine(use_cache=False)  # any work would show
        rerun = run_search(preset, strategy="hill", budget=8, seed=0,
                           engine=rerun_engine, db=db)
        assert rerun.computed == 0
        assert rerun.resumed == result.evaluated
        assert rerun_engine.stats.puts == 0
        assert rerun_engine.stats.misses == 0
