"""CLI surface: ``python -m repro.explore`` run/query/rank/compare."""

import pytest

from repro.explore.__main__ import main


@pytest.fixture(autouse=True)
def _hermetic_db(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DB",
                       str(tmp_path / "explore.sqlite3"))


class TestRun:
    def test_smoke_sweep_then_warm_resume(self, capsys):
        assert main(["run", "--preset", "smoke", "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "4 point(s) scored, 0 resumed" in out
        assert "misses" in err

        # Second invocation answers entirely from the DB: zero engine
        # activity — no compiles, no runs, not even store lookups.
        assert main(["run", "--preset", "smoke", "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "0 point(s) scored, 4 resumed" in out
        assert "0 hits, 0 misses, 0 puts" in err

    def test_backend_shard_sweep_and_resume(self, capsys):
        # Sharded subprocess execution end-to-end, then a DB resume.
        assert main(["run", "--preset", "smoke", "--n", "2",
                     "--backend", "shard", "--workers", "2",
                     "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "2 point(s) scored, 0 resumed" in out
        assert "misses" in err

        assert main(["run", "--preset", "smoke", "--n", "2",
                     "--backend", "shard", "--workers", "2"]) == 0
        assert "0 point(s) scored, 2 resumed" in capsys.readouterr()[0]

    def test_trace_flag_writes_stage_spans(self, tmp_path, capsys):
        """Acceptance: a shard-backend sweep leaves one merged metrics
        snapshot and one trace whose stage spans cover the graph."""
        import json

        trace_path = tmp_path / "sweep-trace.json"
        # Private cache dir: a warm store would satisfy every node from
        # probes, leaving no executed stages to assert on.
        assert main(["run", "--preset", "smoke", "--n", "1",
                     "--backend", "shard", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--trace", str(trace_path)]) == 0
        _, err = capsys.readouterr()
        assert "span(s)" in err
        trace = json.loads(trace_path.read_text())
        assert trace["format"] == "repro-trace"
        cats = {s["cat"] for s in trace["spans"]}
        assert {"compile", "run", "profile", "replay"} <= cats
        names = {e["name"] for e in trace["metrics"]["metrics"]}
        assert {"engine_cache", "engine_stages_executed",
                "engine_store_ops"} <= names

    def test_backend_thread_matches_inline(self, capsys):
        assert main(["run", "--preset", "smoke", "--n", "1",
                     "--backend", "thread", "--workers", "2"]) == 0
        assert "1 point(s) scored" in capsys.readouterr()[0]

    def test_sample_and_top_flags(self, capsys):
        assert main(["run", "--preset", "smoke", "--sample", "random",
                     "--n", "2", "--seed", "3", "--top", "1"]) == 0
        out, _ = capsys.readouterr()
        assert "2 point(s) scored" in out

    def test_pairs_override(self, capsys):
        assert main(["run", "--preset", "smoke", "--n", "1",
                     "--pairs", "crc32/small"]) == 0
        assert "1 point(s) scored" in capsys.readouterr()[0]

    def test_no_cache_measures_compute_not_stale_db_state(self, capsys):
        assert main(["run", "--preset", "smoke", "--n", "1"]) == 0
        capsys.readouterr()
        # --no-cache must not resume from the persistent DB.
        assert main(["run", "--preset", "smoke", "--n", "1",
                     "--no-cache", "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "1 point(s) scored, 0 resumed" in out
        assert "0 hits" in err and "0 puts" in err

    def test_cache_dir_carries_the_results_db_along(self, tmp_path,
                                                    monkeypatch, capsys):
        # Without --db, a relocated store keeps its DB next to it
        # (not at $REPRO_RESULTS_DB / the default cache root).
        monkeypatch.delenv("REPRO_RESULTS_DB", raising=False)
        cache = tmp_path / "relocated"
        assert main(["run", "--preset", "smoke", "--n", "1",
                     "--cache-dir", str(cache)]) == 0
        assert (cache / "explore.sqlite3").exists()
        assert str(cache / "explore.sqlite3") in capsys.readouterr()[0]


class TestSearch:
    def test_hill_search_smoke_then_warm_resume(self, capsys):
        assert main(["search", "smoke", "--strategy", "hill",
                     "--budget", "8", "--seed", "0", "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "Adaptive search 'smoke-hill-s0'" in out
        assert "best score" in out
        assert "misses" in err

        # The acceptance criterion: a repeated invocation resumes every
        # round entirely from the DB — zero compiles/runs/replays.
        assert main(["search", "smoke", "--strategy", "hill",
                     "--budget", "8", "--seed", "0", "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "(0 scored, 4 resumed)" in out
        assert "0 hits, 0 misses, 0 puts" in err

    def test_search_rounds_are_queryable_sweeps(self, capsys):
        assert main(["search", "smoke", "--budget", "4"]) == 0
        capsys.readouterr()
        assert main(["query", "--sweep", "smoke-hill-s0/round-0"]) == 0
        assert "stored result(s)" in capsys.readouterr()[0]

    def test_halving_search(self, capsys):
        assert main(["search", "smoke", "--strategy", "halving",
                     "--budget", "6", "--seed", "1"]) == 0
        out, _ = capsys.readouterr()
        assert "cohort" in out and "promote" in out

    def test_budget_below_one_is_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "smoke", "--budget", "0"])
        assert "--budget" in capsys.readouterr().err

    def test_unknown_preset_is_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "nope"])
        assert "unknown preset 'nope'" in capsys.readouterr().err

    def test_unknown_strategy_is_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "smoke", "--strategy", "bayes"])


class TestRunSampleFlagValidation:
    def test_seed_outside_random_is_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--preset", "smoke", "--seed", "1"])
        assert "--seed" in capsys.readouterr().err

    def test_stride_outside_grid_is_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--preset", "smoke", "--sample", "random",
                  "--n", "1", "--stride", "2"])
        assert "--stride" in capsys.readouterr().err

    def test_stride_below_one_is_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--preset", "smoke", "--stride", "0"])
        assert "--stride" in capsys.readouterr().err


class TestQueryRankCompare:
    @pytest.fixture(autouse=True)
    def _seeded(self, capsys):
        assert main(["run", "--preset", "smoke"]) == 0
        capsys.readouterr()

    def test_query_reads_stored_rows(self, capsys):
        assert main(["query", "--sweep", "smoke"]) == 0
        out, _ = capsys.readouterr()
        assert "4 stored result(s)" in out
        assert "opt_level=0" in out

    def test_query_where_filters(self, capsys):
        assert main(["query", "--where", "width=4"]) == 0
        out, _ = capsys.readouterr()
        assert "2 stored result(s)" in out

    def test_query_no_match_lists_sweeps(self, capsys):
        assert main(["query", "--sweep", "absent"]) == 1
        out, _ = capsys.readouterr()
        assert "stored sweeps: smoke (4)" in out

    def test_rank_orders_and_marks_pareto(self, capsys):
        assert main(["rank", "--sweep", "smoke", "--metric", "cpi_err",
                     "--top", "3", "--pareto"]) == 0
        out, _ = capsys.readouterr()
        assert "Top 3 by cpi_err" in out
        assert "*" in out

    def test_compare_two_sweeps(self, capsys):
        assert main(["run", "--preset", "smoke", "--sweep-name",
                     "smoke2"]) == 0
        capsys.readouterr()
        assert main(["compare", "smoke", "smoke2"]) == 0
        out, _ = capsys.readouterr()
        assert "4 matched point(s)" in out

    def test_compare_disjoint_sweeps_errors(self, capsys):
        assert main(["compare", "smoke", "absent"]) == 1


class TestPresets:
    def test_presets_lists_all(self, capsys):
        assert main(["presets"]) == 0
        out, _ = capsys.readouterr()
        for name in ("smoke", "isa-opt", "table3", "microarch"):
            assert name in out

    def test_unknown_preset_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--preset", "nope"])
        assert "unknown preset 'nope'" in capsys.readouterr().err
