"""Sweep orchestration: scoring, DB persistence, resume after interrupt."""

import pytest

from repro.engine.api import Engine
from repro.explore import sweep as sweep_mod
from repro.explore.db import ResultsDB
from repro.explore.space import Axis, DesignSpace, Preset
from repro.explore.sweep import run_sweep, score_point

PAIRS = (("crc32", "small"),)

TINY = Preset(
    DesignSpace(
        name="tiny",
        axes=(Axis("opt_level", (0, 2)),),
        base={"isa": "x86", "width": 2, "l1_kb": 8},
    ),
    PAIRS,
)


@pytest.fixture
def db(tmp_path):
    with ResultsDB(tmp_path / "sweep.sqlite3") as handle:
        yield handle


@pytest.fixture(scope="module")
def engine():
    return Engine()


class TestScoring:
    def test_score_point_produces_fidelity_metrics(self, engine):
        point = TINY.space.points()[0]
        metrics = score_point(point, PAIRS, engine)
        for name in ("org_cpi", "syn_cpi", "cpi_err", "miss_rate_err",
                     "branch_acc_err", "org_runtime_s", "syn_runtime_s",
                     "score"):
            assert name in metrics
        assert metrics["org_cpi"] > 0
        assert metrics["syn_cpi"] > 0
        assert 0 <= metrics["score"] < 1
        assert metrics["org_instructions"] > \
            metrics["syn_instructions"]  # clones are much shorter


class TestRunSweep:
    def test_sweep_scores_every_point_and_persists(self, engine, db):
        result = run_sweep(TINY, engine=engine, db=db)
        assert len(result.records) == TINY.space.size
        assert result.computed == TINY.space.size
        assert result.resumed == 0
        assert len(db.query(sweep="tiny")) == TINY.space.size
        table = result.format_table()
        assert "opt_level=0" in table and "opt_level=2" in table

    def test_second_run_resumes_everything_without_engine_work(
            self, engine, db):
        run_sweep(TINY, engine=engine, db=db)
        probe = Engine(use_cache=False)  # any compile would show in puts
        result = run_sweep(TINY, engine=probe, db=db)
        assert result.resumed == TINY.space.size
        assert result.computed == 0
        assert probe.stats.puts == 0
        assert probe.stats.misses == 0

    def test_force_rescores(self, engine, db):
        run_sweep(TINY, engine=engine, db=db)
        result = run_sweep(TINY, engine=engine, db=db, force=True)
        assert result.computed == TINY.space.size
        assert result.resumed == 0

    def test_sweep_name_and_pairs_override(self, engine, db):
        run_sweep(TINY, engine=engine, db=db, sweep_name="renamed",
                  pairs=PAIRS)
        assert [r.sweep for r in db.query()] == ["renamed"] * 2

    def test_different_target_instructions_rescore(self, engine, db):
        run_sweep(TINY, engine=engine, db=db)
        other = Engine(target_instructions=engine.target_instructions * 2)
        result = run_sweep(TINY, engine=other, db=db)
        # Different clone size -> different content keys -> recompute.
        assert result.computed == TINY.space.size

    def test_progress_callback_sees_every_point(self, engine, db):
        seen = []
        run_sweep(TINY, engine=engine, db=db,
                  progress=lambda i, n, record, resumed:
                  seen.append((i, n, resumed)))
        assert seen == [(1, 2, False), (2, 2, False)]


class TestResumeAfterInterrupt:
    def test_interrupted_sweep_resumes_at_first_unscored_point(
            self, engine, db, monkeypatch):
        real = score_point
        calls = {"n": 0}

        def explode_after_one(point, pairs, eng):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt("simulated ^C")
            return real(point, pairs, eng)

        monkeypatch.setattr(sweep_mod, "score_point", explode_after_one)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(TINY, engine=engine, db=db)
        # The point scored before the interrupt was persisted.
        assert len(db.query(sweep="tiny")) == 1

        monkeypatch.setattr(sweep_mod, "score_point", real)
        result = run_sweep(TINY, engine=engine, db=db)
        assert result.resumed == 1
        assert result.computed == TINY.space.size - 1
        assert len(db.query(sweep="tiny")) == TINY.space.size


class TestPairAxis:
    def test_pair_axis_pins_the_scored_workload(self, engine, db):
        preset = Preset(
            DesignSpace(
                name="per-pair",
                axes=(Axis("pair", ("crc32/small", "adpcm/small")),),
                base={"isa": "x86", "opt_level": 0},
            ),
            PAIRS,
        )
        result = run_sweep(preset, engine=engine, db=db)
        assert len(result.records) == 2
        instructions = {r.point["pair"]: r.metrics["org_instructions"]
                        for r in result.records}
        assert instructions["crc32/small"] != instructions["adpcm/small"]
