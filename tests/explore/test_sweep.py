"""Sweep orchestration: scoring, DB persistence, resume after interrupt."""

import math

import pytest

from repro.engine.api import Engine
from repro.engine.backends import AutoBackend
from repro.engine.store import ArtifactStore
from repro.engine.tasks import STAGE_COMPILE, STAGE_REPLAY, STAGE_RUN
from repro.explore import sweep as sweep_mod
from repro.explore.db import ResultsDB
from repro.explore.space import Axis, DesignSpace, Preset
from repro.explore.sweep import _rel_err, _score, run_sweep, score_point

PAIRS = (("crc32", "small"),)

TINY = Preset(
    DesignSpace(
        name="tiny",
        axes=(Axis("opt_level", (0, 2)),),
        base={"isa": "x86", "width": 2, "l1_kb": 8},
    ),
    PAIRS,
)


@pytest.fixture
def db(tmp_path):
    with ResultsDB(tmp_path / "sweep.sqlite3") as handle:
        yield handle


@pytest.fixture(scope="module")
def engine():
    return Engine()


class TestScoring:
    def test_score_point_produces_fidelity_metrics(self, engine):
        point = TINY.space.points()[0]
        metrics = score_point(point, PAIRS, engine)
        for name in ("org_cpi", "syn_cpi", "cpi_err", "miss_rate_err",
                     "branch_acc_err", "org_runtime_s", "syn_runtime_s",
                     "score"):
            assert name in metrics
        assert metrics["org_cpi"] > 0
        assert metrics["syn_cpi"] > 0
        assert 0 <= metrics["score"] < 1
        assert metrics["org_instructions"] > \
            metrics["syn_instructions"]  # clones are much shorter

    def test_score_point_reports_distribution_divergence(self, engine):
        """Acceptance: scoring carries >= 1 distribution-divergence
        component from the simulator exp-histograms, not just scalars."""
        point = TINY.space.points()[0]
        metrics = score_point(point, PAIRS, engine)
        divergences = [name for name in ("mem_lat_div", "branch_run_div")
                       if name in metrics]
        assert divergences, "no distribution-divergence component scored"
        for name in divergences:
            assert 0.0 <= metrics[name] <= 1.0

    def test_score_averages_divergence_components(self):
        with_div = _score({"cpi_err": 0.2, "mem_lat_div": 0.8})
        assert with_div == pytest.approx(0.5)
        # Absent divergences (pre-histogram artifacts) drop cleanly.
        assert _score({"cpi_err": 0.2}) == pytest.approx(0.2)


class TestRelErr:
    def test_normal_relative_error(self):
        assert _rel_err(2.0, 1.0) == 0.5

    def test_zero_reference_zero_measured_is_exact(self):
        assert _rel_err(0.0, 0.0) == 0.0

    def test_zero_reference_drops_component_with_warning(self):
        with pytest.warns(RuntimeWarning, match="relative error undefined"):
            assert _rel_err(0.0, 1.5) is None

    def test_score_averages_defined_finite_components(self):
        assert _score({"cpi_err": 0.2, "miss_rate_err": 0.4,
                       "branch_acc_err": 0.6}) == pytest.approx(0.4)
        # A dropped (missing) component narrows the average, never inf.
        assert _score({"miss_rate_err": 0.1,
                       "branch_acc_err": 0.3}) == pytest.approx(0.2)
        assert _score({"cpi_err": float("inf"), "miss_rate_err": 0.1,
                       "branch_acc_err": 0.3}) == pytest.approx(0.2)

    def test_score_with_no_usable_component_sorts_last(self):
        assert _score({}) == float("inf")


class TestEngineLowering:
    """score_point rides the engine's replay stage, not in-process
    simulation — the sweep hot path is cached and backend-parallel."""

    def test_warmed_sweep_rerun_does_zero_work(self, db, tmp_path):
        """The acceptance criterion: a repeated sweep performs zero
        compiles, zero runs, and zero replays — every replay node
        cache-hits."""
        first = Engine(store=ArtifactStore(root=tmp_path / "store"))
        run_sweep(TINY, engine=first, db=db)

        rerun = Engine(store=ArtifactStore(root=tmp_path / "store"))
        result = run_sweep(TINY, engine=rerun, db=db, force=True)
        assert result.computed == TINY.space.size
        assert rerun.stats.misses == 0 and rerun.stats.puts == 0
        assert rerun.stats.hits > 0  # served entirely from the store

    def test_auto_backend_routes_sweep_stages_by_cost(self, db, tmp_path):
        """Replay nodes land on the thread pool, compile/run nodes on
        the process pool (the auto backend's dispatch accounting)."""
        backend = AutoBackend(workers=2)
        engine = Engine(store=ArtifactStore(root=tmp_path / "store"),
                        backend=backend)
        run_sweep(TINY, engine=engine, db=db)
        assert backend.routed_stages[STAGE_REPLAY] == "thread"
        assert backend.routed_stages[STAGE_COMPILE] == "process"
        assert backend.routed_stages[STAGE_RUN] == "process"
        assert backend.routed["thread"] >= TINY.space.size  # the replays


class TestRunSweep:
    def test_sweep_scores_every_point_and_persists(self, engine, db):
        result = run_sweep(TINY, engine=engine, db=db)
        assert len(result.records) == TINY.space.size
        assert result.computed == TINY.space.size
        assert result.resumed == 0
        assert len(db.query(sweep="tiny")) == TINY.space.size
        table = result.format_table()
        assert "opt_level=0" in table and "opt_level=2" in table

    def test_second_run_resumes_everything_without_engine_work(
            self, engine, db):
        run_sweep(TINY, engine=engine, db=db)
        probe = Engine(use_cache=False)  # any compile would show in puts
        result = run_sweep(TINY, engine=probe, db=db)
        assert result.resumed == TINY.space.size
        assert result.computed == 0
        assert probe.stats.puts == 0
        assert probe.stats.misses == 0

    def test_force_rescores(self, engine, db):
        run_sweep(TINY, engine=engine, db=db)
        result = run_sweep(TINY, engine=engine, db=db, force=True)
        assert result.computed == TINY.space.size
        assert result.resumed == 0

    def test_sweep_name_and_pairs_override(self, engine, db):
        run_sweep(TINY, engine=engine, db=db, sweep_name="renamed",
                  pairs=PAIRS)
        assert [r.sweep for r in db.query()] == ["renamed"] * 2

    def test_different_target_instructions_rescore(self, engine, db):
        run_sweep(TINY, engine=engine, db=db)
        other = Engine(target_instructions=engine.target_instructions * 2)
        result = run_sweep(TINY, engine=other, db=db)
        # Different clone size -> different content keys -> recompute.
        assert result.computed == TINY.space.size

    def test_progress_callback_sees_every_point(self, engine, db):
        seen = []
        run_sweep(TINY, engine=engine, db=db,
                  progress=lambda i, n, record, status:
                  seen.append((i, n, status)))
        assert seen == [(1, 2, "run"), (2, 2, "run")]

    def test_progress_reports_resumed_status(self, engine, db):
        run_sweep(TINY, engine=engine, db=db)
        seen = []
        run_sweep(TINY, engine=engine, db=db,
                  progress=lambda i, n, record, status:
                  seen.append(status))
        assert seen == ["resumed", "resumed"]

    def test_explicit_points_bypass_sampling(self, engine, db):
        points = TINY.space.points()[:1]
        result = run_sweep(TINY, engine=engine, db=db, points=points)
        assert result.points == points
        assert len(result.records) == 1

    def test_failed_point_skipped_with_failed_status(self, engine, db,
                                                     monkeypatch):
        real = score_point

        def flaky(point, pairs, eng):
            if point["opt_level"] == 2:
                raise RuntimeError("boom")
            return real(point, pairs, eng)

        monkeypatch.setattr(sweep_mod, "score_point", flaky)
        seen = []
        with pytest.warns(RuntimeWarning, match="failed"):
            result = run_sweep(
                TINY, engine=engine, db=db,
                progress=lambda i, n, record, status:
                seen.append((status, record is None)))
        # The failed point is reported distinctly — not as "run" — and
        # skipped; the surviving point still lands in the DB.
        assert seen == [("run", False), ("failed", True)]
        assert len(result.records) == 1
        assert len(result.failed) == 1
        assert result.failed[0][0]["opt_level"] == 2
        assert "1 failed" in result.format_table()
        assert len(db.query(sweep="tiny")) == 1


class TestResumeAfterInterrupt:
    def test_interrupted_sweep_resumes_at_first_unscored_point(
            self, engine, db, monkeypatch):
        real = score_point
        calls = {"n": 0}

        def explode_after_one(point, pairs, eng):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt("simulated ^C")
            return real(point, pairs, eng)

        monkeypatch.setattr(sweep_mod, "score_point", explode_after_one)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(TINY, engine=engine, db=db)
        # The point scored before the interrupt was persisted.
        assert len(db.query(sweep="tiny")) == 1

        monkeypatch.setattr(sweep_mod, "score_point", real)
        result = run_sweep(TINY, engine=engine, db=db)
        assert result.resumed == 1
        assert result.computed == TINY.space.size - 1
        assert len(db.query(sweep="tiny")) == TINY.space.size


class TestPairAxis:
    def test_pair_axis_pins_the_scored_workload(self, engine, db):
        preset = Preset(
            DesignSpace(
                name="per-pair",
                axes=(Axis("pair", ("crc32/small", "adpcm/small")),),
                base={"isa": "x86", "opt_level": 0},
            ),
            PAIRS,
        )
        result = run_sweep(preset, engine=engine, db=db)
        assert len(result.records) == 2
        instructions = {r.point["pair"]: r.metrics["org_instructions"]
                        for r in result.records}
        assert instructions["crc32/small"] != instructions["adpcm/small"]


SYNTH_NAME = "synth:s5-int-f64-d1-t3-e20-c1"

SYNTH_TINY = Preset(
    DesignSpace(
        name="synth-tiny",
        axes=(Axis("workload", (SYNTH_NAME,)),
              Axis("opt_level", (0, 2))),
        base={"isa": "x86", "width": 2, "l1_kb": 8},
    ),
    ((SYNTH_NAME, "small"),),
)


class TestWorkloadAxisSweep:
    """A generated workload swept as a first-class axis: run_sweep needs
    zero changes because DesignPoint.pair lowers the workload axis."""

    def test_sweep_scores_synth_points(self, db, tmp_path):
        engine = Engine(store=ArtifactStore(root=tmp_path / "store"))
        result = run_sweep(SYNTH_TINY, engine=engine, db=db)
        assert result.computed == SYNTH_TINY.space.size
        for record in result.records:
            assert record.point["workload"] == SYNTH_NAME
            assert record.metrics["org_cpi"] > 0
            assert 0 <= record.score < 1

    def test_warm_synth_resweep_does_zero_work(self, db, tmp_path):
        first = Engine(store=ArtifactStore(root=tmp_path / "store"))
        run_sweep(SYNTH_TINY, engine=first, db=db)

        rerun = Engine(store=ArtifactStore(root=tmp_path / "store"))
        result = run_sweep(SYNTH_TINY, engine=rerun, db=db, force=True)
        assert result.computed == SYNTH_TINY.space.size
        assert rerun.stats.misses == 0 and rerun.stats.puts == 0
