"""CostModel: EWMA learning, static fallback, and learned routing."""

from __future__ import annotations

import pytest

from repro.engine.backends.auto import AutoBackend
from repro.engine.tasks import STAGE_COSTS, Task, stage_cost
from repro.explore.db import ResultsDB
from repro.serve.costs import DEFAULT_ALPHA, MIN_SAMPLES, UNIT_SECONDS, CostModel


def _task(stage: str) -> Task:
    return Task(id=f"{stage}:t", stage=stage)


class TestColdModel:
    def test_cold_cost_is_static_table(self):
        model = CostModel()
        for stage, static in STAGE_COSTS.items():
            assert model.cost(stage) == static

    def test_cold_unknown_stage_uses_default(self):
        assert CostModel().cost("nonesuch") == stage_cost("nonesuch")

    def test_cold_seconds_is_none(self):
        assert CostModel().seconds("compile") is None

    def test_estimate_prices_cold_stages_through_static_units(self):
        model = CostModel()
        estimate = model.estimate_seconds(["compile", "replay"])
        expected = (STAGE_COSTS["compile"] + STAGE_COSTS["replay"]) \
            * UNIT_SECONDS
        assert estimate == pytest.approx(expected)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            CostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(alpha=1.5)


class TestLearning:
    def test_warm_after_min_samples(self):
        model = CostModel()
        for _ in range(MIN_SAMPLES - 1):
            model.observe("compile", 2.0)
        assert model.seconds("compile") is None
        model.observe("compile", 2.0)
        assert model.seconds("compile") == pytest.approx(2.0)

    def test_ewma_folds_with_alpha(self):
        model = CostModel(alpha=0.5, min_samples=1)
        model.observe("run", 1.0)
        model.observe("run", 3.0)
        assert model.seconds("run") == pytest.approx(2.0)

    def test_learned_cost_converts_seconds_to_units(self):
        model = CostModel(min_samples=1)
        model.observe("replay", 0.5)
        assert model.cost("replay") == pytest.approx(0.5 / UNIT_SECONDS)

    def test_negative_observations_ignored(self):
        model = CostModel(min_samples=1)
        model.observe("run", -1.0)
        assert model.samples("run") == 0

    def test_estimate_mixes_learned_and_static(self):
        model = CostModel(min_samples=1)
        model.observe("compile", 4.0)
        estimate = model.estimate_seconds(["compile", "replay"])
        assert estimate == pytest.approx(
            4.0 + STAGE_COSTS["replay"] * UNIT_SECONDS)

    def test_snapshot_reports_source(self):
        model = CostModel(min_samples=1)
        model.observe("compile", 1.0)
        snap = model.snapshot()
        assert snap["compile"]["source"] == "learned"
        assert snap["replay"]["source"] == "static"


class TestPersistence:
    def test_observe_persists_to_db(self, tmp_path):
        with ResultsDB(tmp_path / "e.sqlite3") as db:
            model = CostModel(db=db, min_samples=1)
            model.observe("compile", 1.5)
            history = db.stage_cost_history("compile")
        assert [(s, sec) for s, sec, _ in history] == [("compile", 1.5)]

    def test_warm_start_replays_history(self, tmp_path):
        path = tmp_path / "e.sqlite3"
        with ResultsDB(path) as db:
            db.record_stage_costs([("compile", 2.0)] * MIN_SAMPLES)
        with ResultsDB(path) as db:
            model = CostModel(db=db)
        assert model.seconds("compile") == pytest.approx(2.0)
        assert model.samples("compile") == MIN_SAMPLES

    def test_warm_start_does_not_rewrite_history(self, tmp_path):
        path = tmp_path / "e.sqlite3"
        with ResultsDB(path) as db:
            db.record_stage_cost("run", 1.0)
        with ResultsDB(path) as db:
            CostModel(db=db)
            assert len(db.stage_cost_history()) == 1


class TestLearnedRouting:
    """The ISSUE acceptance check: measured history shifts the ``auto``
    backend's thread-vs-process decision away from the static table."""

    def test_replay_reroutes_to_process_after_measured_history(
            self, tmp_path):
        backend = AutoBackend(workers=1)
        # Static prior: replay (0.5) is far below heavy_cost — threads.
        assert backend.route(_task("replay")) == "thread"

        # Seed the DB with measured history: replays actually take
        # 0.5 s ≈ 50 static units, well past the process threshold.
        with ResultsDB(tmp_path / "e.sqlite3") as db:
            db.record_stage_costs(
                [("replay", backend.heavy_cost * UNIT_SECONDS * 2)]
                * MIN_SAMPLES)
            model = CostModel(db=db)
        backend.cost_model = model
        assert backend.route(_task("replay")) == "process"

    def test_compile_reroutes_to_thread_when_measured_cheap(self):
        backend = AutoBackend(workers=1)
        assert backend.route(_task("compile")) == "process"
        model = CostModel(min_samples=1)
        # Measured far below the heavy threshold (0.01 static units).
        model.observe("compile", UNIT_SECONDS / 100.0)
        backend.cost_model = model
        assert backend.route(_task("compile")) == "thread"

    def test_cold_model_matches_static_decision(self):
        with_model = AutoBackend(workers=1, cost_model=CostModel())
        without = AutoBackend(workers=1)
        for stage in STAGE_COSTS:
            task = _task(stage)
            assert with_model.route(task) == without.route(task)

    def test_default_alpha_is_sane(self):
        assert 0.0 < DEFAULT_ALPHA <= 1.0
