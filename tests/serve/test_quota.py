"""Token-bucket quotas: deterministic via injected clocks."""

from __future__ import annotations

import pytest

from repro.serve.quota import QuotaRegistry, TokenBucket


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, capacity=3.0)
        assert [bucket.try_acquire(now=0.0) for _ in range(4)] == \
            [True, True, True, False]

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, capacity=2.0)
        assert bucket.try_acquire(2.0, now=0.0)
        assert not bucket.try_acquire(1.0, now=0.0)
        assert bucket.try_acquire(1.0, now=0.5)  # 0.5 s × 2/s = 1 token

    def test_never_exceeds_capacity(self):
        bucket = TokenBucket(rate=10.0, capacity=2.0)
        assert bucket.available(now=100.0) == pytest.approx(2.0)

    def test_retry_after_names_the_deficit(self):
        bucket = TokenBucket(rate=0.5, capacity=1.0)
        assert bucket.try_acquire(now=0.0)
        assert bucket.retry_after(1.0, now=0.0) == pytest.approx(2.0)

    def test_retry_after_zero_when_available(self):
        assert TokenBucket(1.0, 1.0).retry_after(1.0, now=0.0) == 0.0

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, -1.0)

    def test_clock_going_backwards_is_harmless(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0)
        assert bucket.try_acquire(now=10.0)
        assert not bucket.try_acquire(now=5.0)


class TestQuotaRegistry:
    def test_disabled_always_admits(self):
        registry = QuotaRegistry(rate=None)
        for _ in range(100):
            assert registry.admit("anyone") == (True, 0.0)
        assert registry.snapshot() == {"enabled": False}

    def test_per_client_isolation(self):
        registry = QuotaRegistry(rate=0.001, burst=1.0)
        assert registry.admit("a", now=0.0)[0]
        assert not registry.admit("a", now=0.0)[0]
        assert registry.admit("b", now=0.0)[0]  # b's bucket is fresh

    def test_denial_reports_retry_after(self):
        registry = QuotaRegistry(rate=1.0, burst=1.0)
        assert registry.admit("c", now=0.0)[0]
        admitted, retry_after = registry.admit("c", now=0.0)
        assert not admitted
        assert retry_after == pytest.approx(1.0)

    def test_burst_defaults_to_ten_times_rate(self):
        assert QuotaRegistry(rate=2.0).burst == 20.0

    def test_snapshot_counts_denials(self):
        registry = QuotaRegistry(rate=0.001, burst=1.0)
        registry.admit("d", now=0.0)
        registry.admit("d", now=0.0)
        registry.admit("d", now=0.0)
        snap = registry.snapshot()
        assert snap["enabled"] is True
        assert snap["clients"]["d"]["denied"] == 2
