"""The serve daemon: admission, coalescing, streaming, drain.

App-level tests drive :class:`ServeApp` directly (deterministic via a
gate around job execution); socket-level tests boot a real asyncio
server on an ephemeral port and talk to it with the stdlib client.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.serve.server as server_mod
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import CapacityError, QuotaExceeded, ReproServer, ServeApp
from repro.workloads import WORKLOADS

WORKLOAD = list(WORKLOADS)[0]

REPLAY_REQUEST = {
    "kind": "replay",
    "workload": WORKLOAD,
    "input": "small",
    "machine": {"width": 4},
    "client": "test",
}


@pytest.fixture()
def make_app(tmp_path):
    """ServeApp factory with an isolated store + DB per app — the
    session-shared REPRO_CACHE_DIR would otherwise leak warm artifacts
    between tests and break the miss-count assertions."""
    created = []

    def factory(**kwargs) -> ServeApp:
        kwargs.setdefault("log", lambda message: None)
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("backend", "thread")
        kwargs.setdefault("cache_dir", tmp_path / f"cache{len(created)}")
        kwargs.setdefault("db_path",
                          tmp_path / f"explore{len(created)}.sqlite3")
        app = ServeApp(**kwargs)
        created.append(app)
        return app

    yield factory
    for app in created:
        app.executor.shutdown(wait=False)


class Gate:
    """Stalls job execution until released — makes coalescing windows
    deterministic instead of racing the real (fast) pipeline."""

    def __init__(self, monkeypatch, wrap: bool = True):
        self.release = threading.Event()
        self.entered = threading.Event()
        real = server_mod.run_job

        def gated(job, engine, db_path=None):
            self.entered.set()
            assert self.release.wait(30.0), "gate never released"
            if wrap:
                return real(job, engine, db_path)
            return {"gated": job.kind}

        monkeypatch.setattr(server_mod, "run_job", gated)


class TestAdmission:
    def test_bad_request_raises(self, make_app):
        app = make_app()
        with pytest.raises(server_mod.BadRequest):
            app.submit({"kind": "nope"})

    def test_quota_denial(self, make_app):
        app = make_app(quota_rate=0.001, quota_burst=1.0)
        job, _, _ = app.submit(dict(REPLAY_REQUEST))
        assert job.wait(timeout=30.0)
        with pytest.raises(QuotaExceeded) as exc_info:
            app.submit(dict(REPLAY_REQUEST))
        assert exc_info.value.retry_after > 0

    def test_capacity_denial(self, make_app, monkeypatch):
        gate = Gate(monkeypatch, wrap=False)
        app = make_app(queue_limit=1)
        job, _, _ = app.submit(dict(REPLAY_REQUEST))
        gate.entered.wait(10.0)
        with pytest.raises(CapacityError):
            app.submit({**REPLAY_REQUEST, "machine": {"width": 2}})
        gate.release.set()
        assert job.wait(timeout=30.0)

    def test_coalesced_submission_does_not_hit_capacity(self, make_app,
                                                        monkeypatch):
        gate = Gate(monkeypatch, wrap=False)
        app = make_app(queue_limit=1)
        first, _, _ = app.submit(dict(REPLAY_REQUEST))
        gate.entered.wait(10.0)
        # Identical request attaches to the live job instead of tripping
        # the full queue.
        second, coalesced, _ = app.submit(dict(REPLAY_REQUEST))
        assert coalesced and second is first
        gate.release.set()
        assert first.wait(timeout=30.0)


class TestCoalescing:
    def test_concurrent_identical_submissions_share_one_execution(
            self, make_app, monkeypatch):
        """The acceptance check: N concurrent identical submissions →
        one job, every graph node executed exactly once, N identical
        results."""
        gate = Gate(monkeypatch)
        app = make_app()
        replies = [app.submit(dict(REPLAY_REQUEST)) for _ in range(5)]
        jobs = {id(reply[0]) for reply in replies}
        assert len(jobs) == 1, "all five submissions share one job"
        assert sum(1 for _, coalesced, _ in replies if coalesced) == 4
        job = replies[0][0]
        assert job.waiters == 5
        gate.release.set()
        assert job.wait(timeout=60.0)
        assert job.state == "done"

        # Scheduler/store accounting: the replay graph has exactly
        # three nodes (compile → run → replay) and each executed once.
        assert app.store.stats.misses == 3
        assert app.node_coalescer.snapshot()["executed"] == 3
        assert app.coalescer.snapshot()["hits"] == 4

        # Every waiter reads the same result object — byte-identical.
        payloads = {json.dumps(job.result, sort_keys=True)
                    for _ in replies}
        assert len(payloads) == 1

    def test_resubmit_after_completion_resolves_warm(self, make_app):
        app = make_app()
        first, _, _ = app.submit(dict(REPLAY_REQUEST))
        assert first.wait(timeout=60.0) and first.state == "done"
        misses_before = app.store.stats.misses

        second, coalesced, _ = app.submit(dict(REPLAY_REQUEST))
        assert not coalesced, "finished jobs don't coalesce"
        assert second is not first
        assert second.wait(timeout=60.0) and second.state == "done"
        assert app.store.stats.misses == misses_before, \
            "warm resubmit re-executes nothing"
        assert json.dumps(second.result, sort_keys=True) == \
            json.dumps(first.result, sort_keys=True)

    def test_overlapping_distinct_jobs_share_nodes(self, make_app):
        """Two different machines replay the same workload: the compile
        and run nodes are shared, only the replays differ — so exactly
        4 of the 6 requested node executions actually run."""
        app = make_app(max_inflight=2)
        first, _, _ = app.submit(dict(REPLAY_REQUEST))
        second, coalesced, _ = app.submit(
            {**REPLAY_REQUEST, "machine": {"width": 2}})
        assert not coalesced and second is not first
        assert first.wait(timeout=60.0) and second.wait(timeout=60.0)
        assert first.state == "done" and second.state == "done"
        # Shared compile + shared run + two distinct replays: whichever
        # job loses a node race coalesces (mutex) or resolves from
        # memo/store — nothing executes twice.
        assert app.node_coalescer.snapshot()["executed"] == 4
        assert first.result["timing"]["cycles"] != \
            second.result["timing"]["cycles"]


class TestStatsAndCosts:
    def test_stats_shape(self, make_app):
        stats = make_app().stats()
        assert set(stats) >= {"jobs", "store", "submissions", "nodes",
                              "quota", "stage_costs", "draining"}

    def test_execution_feeds_cost_model_and_persists(self, make_app,
                                                     tmp_path):
        db_path = tmp_path / "costs.sqlite3"
        app = make_app(db_path=db_path)
        job, _, _ = app.submit(dict(REPLAY_REQUEST))
        assert job.wait(timeout=60.0) and job.state == "done"
        assert app.cost_model.samples("replay") >= 1

        from repro.explore.db import ResultsDB

        with ResultsDB(db_path) as db:
            stats = db.stage_cost_stats()
        assert stats["replay"]["n"] >= 1

    def test_restart_warm_starts_from_persisted_history(self, make_app,
                                                        tmp_path):
        db_path = tmp_path / "history.sqlite3"
        from repro.explore.db import ResultsDB

        with ResultsDB(db_path) as db:
            db.record_stage_costs([("replay", 1.0)] * 5)
        app = make_app(db_path=db_path)
        assert app.cost_model.samples("replay") == 5


class TestDrain:
    def test_drain_finishes_in_flight_work(self, make_app, monkeypatch):
        gate = Gate(monkeypatch)
        app = make_app()
        job, _, _ = app.submit(dict(REPLAY_REQUEST))
        gate.entered.wait(10.0)

        drained = threading.Event()

        def drain():
            app.drain()
            drained.set()

        thread = threading.Thread(target=drain)
        thread.start()
        time.sleep(0.05)
        assert not drained.is_set(), "drain waits for in-flight jobs"
        gate.release.set()
        thread.join(timeout=30.0)
        assert drained.is_set()
        assert job.state == "done", "in-flight work finished, not dropped"
        assert app.draining

    def test_drain_is_idempotent(self, make_app):
        app = make_app()
        app.drain()
        app.drain()
        assert app.draining


def _start_server_thread(app):
    """Boot a ReproServer for *app* on an ephemeral port in its own
    loop thread; returns ``(server, stop)``."""
    server = ReproServer(app, port=0)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def loop_body():
        asyncio.set_event_loop(loop)
        server._stopping = asyncio.Event()

        async def run():
            await server.start()
            started.set()
            await server._stopping.wait()
            server._server.close()
            await server._server.wait_closed()

        loop.run_until_complete(run())
        loop.close()

    thread = threading.Thread(target=loop_body, daemon=True)
    thread.start()
    assert started.wait(10.0), "server never came up"

    def stop():
        loop.call_soon_threadsafe(server._stopping.set)
        thread.join(timeout=10.0)

    return server, stop


@pytest.fixture()
def live_server(make_app):
    """A real daemon on an ephemeral port, driven from a loop thread."""
    app = make_app()
    server, stop = _start_server_thread(app)
    yield app, server, ServeClient(port=server.port, client_id="pytest")
    stop()


class TestHTTP:
    def test_replay_round_trip(self, live_server):
        _, _, client = live_server
        reply = client.submit(dict(REPLAY_REQUEST))
        assert reply["_status"] == 202
        status = client.wait(reply["job"], timeout=60.0)
        assert status["state"] == "done"
        result = client.result(reply["job"])
        assert result["result"]["timing"]["cycles"] > 0
        assert result["result"]["workload"] == WORKLOAD

    def test_three_concurrent_clients_coalesce(self, live_server,
                                               monkeypatch):
        gate = Gate(monkeypatch)
        _, _, base = live_server

        def submit(index):
            client = ServeClient(port=base.port,
                                 client_id=f"client-{index}")
            return client.submit(dict(REPLAY_REQUEST))

        with ThreadPoolExecutor(3) as pool:
            first = pool.submit(submit, 0).result(timeout=30.0)
            assert gate.entered.wait(10.0)
            rest = list(pool.map(submit, (1, 2)))
        gate.release.set()

        replies = [first, *rest]
        assert len({reply["job"] for reply in replies}) == 1
        assert [r["coalesced"] for r in replies].count(True) == 2
        final = base.wait(first["job"], timeout=60.0)
        assert final["state"] == "done"
        assert final["waiters"] == 3
        bodies = {json.dumps(base.result(r["job"]), sort_keys=True)
                  for r in replies}
        assert len(bodies) == 1, "all three clients read identical bytes"

    def test_events_stream_until_done(self, live_server):
        _, _, client = live_server
        reply = client.submit(dict(REPLAY_REQUEST))
        events = client.events(reply["job"])
        names = [event["event"] for event in events]
        assert names[0] == "queued"
        assert names[-1] in ("done", "failed")
        assert [event["seq"] for event in events] == \
            list(range(len(events)))

    def test_unknown_job_404(self, live_server):
        _, _, client = live_server
        with pytest.raises(ServeError) as exc_info:
            client.status("j999999-deadbeef")
        assert exc_info.value.status == 404

    def test_bad_json_400(self, live_server):
        import http.client

        _, server, _ = live_server
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        conn.request("POST", "/v1/jobs", body=b"{nope",
                     headers={"Content-Type": "application/json"})
        assert conn.getresponse().status == 400
        conn.close()

    def test_bad_kind_400(self, live_server):
        _, _, client = live_server
        with pytest.raises(ServeError) as exc_info:
            client.submit({"kind": "espresso"})
        assert exc_info.value.status == 400

    def test_result_while_running_is_202(self, live_server, monkeypatch):
        gate = Gate(monkeypatch)
        _, _, client = live_server
        reply = client.submit(dict(REPLAY_REQUEST))
        assert gate.entered.wait(10.0)
        pending = client.result(reply["job"])
        assert pending["_status"] == 202
        gate.release.set()
        client.wait(reply["job"], timeout=60.0)

    def test_stats_and_health(self, live_server):
        _, _, client = live_server
        assert client.health()["ok"] is True
        stats = client.stats()
        assert "stage_costs" in stats and "submissions" in stats

    def test_draining_rejects_submissions_503(self, live_server):
        app, _, client = live_server
        app.draining = True
        try:
            with pytest.raises(ServeError) as exc_info:
                client.submit(dict(REPLAY_REQUEST))
            assert exc_info.value.status == 503
        finally:
            app.draining = False

    def test_quota_429_with_retry_after(self, make_app):
        app = make_app(quota_rate=0.001, quota_burst=1.0)
        server, stop = _start_server_thread(app)
        try:
            client = ServeClient(port=server.port, client_id="flood")
            first = client.submit(dict(REPLAY_REQUEST))
            client.wait(first["job"], timeout=60.0)
            with pytest.raises(ServeError) as exc_info:
                client.submit(dict(REPLAY_REQUEST))
            assert exc_info.value.status == 429
            assert exc_info.value.body["retry_after_seconds"] > 0
        finally:
            stop()


class TestObservability:
    def test_job_metrics_recorded(self, make_app):
        app = make_app()
        job, _, _ = app.submit(dict(REPLAY_REQUEST))
        assert job.wait(timeout=60.0)
        entries = {(e["name"], tuple(sorted(e["tags"].items()))): e
                   for e in app.metrics.snapshot()["metrics"]}
        assert entries[("serve_submissions", ())]["data"]["values"] == \
            {"replay": 1}
        latency = entries[("serve_job_seconds", (("kind", "replay"),))]
        assert latency["data"]["count"] == 1
        assert latency["volatile"] is True
        assert entries[("serve_job_waiters", ())]["data"]["count"] == 1
        store_ops = entries[("serve_store_ops", ())]["data"]["values"]
        assert store_ops.get("misses", 0) > 0

    def test_quota_rejection_counted(self, make_app):
        app = make_app(quota_rate=0.001, quota_burst=1.0)
        job, _, _ = app.submit(dict(REPLAY_REQUEST))
        assert job.wait(timeout=60.0)
        with pytest.raises(QuotaExceeded):
            app.submit(dict(REPLAY_REQUEST))
        assert app.metrics.counter("serve_quota_rejections").value == 1

    def test_stats_includes_metrics_snapshot(self, make_app):
        app = make_app()
        stats = app.stats()
        assert stats["metrics"]["format"] == "repro-metrics"

    def test_metrics_text_includes_live_gauges(self, make_app):
        app = make_app()
        job, _, _ = app.submit(dict(REPLAY_REQUEST))
        assert job.wait(timeout=60.0)
        text = app.metrics_text()
        assert 'repro_store_ops_total{op="misses"}' in text
        assert "repro_serve_submission_coalescer_hits 0" in text
        assert "repro_serve_node_coalescer_executed" in text
        assert "repro_serve_quota_enabled 0" in text
        assert "repro_serve_jobs_live 0" in text
        assert 'serve_submissions{kind="replay"} 1' in text
        assert "serve_job_seconds_count" in text

    def test_http_metrics_endpoint(self, live_server):
        import http.client

        app, server, client = live_server
        reply = client.submit(dict(REPLAY_REQUEST))
        client.wait(reply["job"], timeout=60.0)
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        conn.request("GET", "/v1/metrics")
        response = conn.getresponse()
        body = response.read().decode()
        conn.close()
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        assert "# TYPE serve_submissions counter" in body
        assert "repro_store_ops_total" in body
        assert "repro_serve_quota_denied_total 0" in body
        assert "serve_job_seconds_bucket" in body

    def test_default_log_is_structured(self, make_app):
        from repro.obs.log import StructuredLogger

        app = make_app(log=None)
        assert isinstance(app.log, StructuredLogger)
        assert app.log.name == "repro-serve"

    def test_log_helper_falls_back_to_plain_callable(self, make_app):
        lines = []
        app = make_app(log=lines.append)
        app._log("plain sink", level="error")
        assert lines == ["plain sink"]
