"""Request normalization, job keys, and job lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.serve.jobs import (
    BadRequest,
    JobRegistry,
    estimate_stages,
    job_key,
    normalize_request,
)
from repro.workloads import WORKLOADS

PAIR = [list(WORKLOADS)[0], "small"]


class TestNormalize:
    def test_rejects_unknown_kind(self):
        with pytest.raises(BadRequest, match="unknown job kind"):
            normalize_request({"kind": "make-coffee"})

    def test_rejects_non_object(self):
        with pytest.raises(BadRequest):
            normalize_request(["kind", "warm"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(BadRequest, match="unknown workload"):
            normalize_request({"kind": "warm", "pairs": [["nope", "small"]]})

    def test_rejects_unknown_input(self):
        with pytest.raises(BadRequest, match="unknown input"):
            normalize_request(
                {"kind": "warm", "pairs": [[PAIR[0], "galactic"]]})

    def test_rejects_unknown_figure(self):
        with pytest.raises(BadRequest, match="unknown figure"):
            normalize_request({"kind": "figure", "figure": "fig99"})

    def test_rejects_unknown_machine_axis(self):
        with pytest.raises(BadRequest, match="unknown machine axis"):
            normalize_request({
                "kind": "replay", "workload": PAIR[0], "input": "small",
                "machine": {"l7_kb": 1},
            })

    def test_rejects_unknown_preset(self):
        with pytest.raises(BadRequest, match="unknown preset"):
            normalize_request({"kind": "sweep", "preset": "galaxy"})

    def test_slash_and_list_pair_forms_agree(self):
        slash = normalize_request(
            {"kind": "warm", "pairs": [f"{PAIR[0]}/small"]})
        listed = normalize_request({"kind": "warm", "pairs": [PAIR]})
        assert slash == listed

    def test_pair_order_is_canonical(self):
        pairs = [[list(WORKLOADS)[1], "small"], PAIR]
        forward = normalize_request({"kind": "warm", "pairs": pairs})
        backward = normalize_request(
            {"kind": "warm", "pairs": list(reversed(pairs))})
        assert forward == backward

    def test_defaults_are_materialized(self):
        _, params, _ = normalize_request({"kind": "warm", "pairs": [PAIR]})
        assert params["coords"] == [["x86", 0]]
        assert params["sides"] == ["org", "syn"]
        assert params["target_instructions"] > 0

    def test_machine_axes_coerce_and_fill(self):
        _, params, _ = normalize_request({
            "kind": "replay", "workload": PAIR[0], "input": "small",
            "machine": {"width": "4"},
        })
        assert params["machine"]["width"] == 4
        assert params["machine"]["rob"] > 0  # defaults materialized

    def test_client_defaults_to_anonymous(self):
        _, _, client = normalize_request({"kind": "warm", "pairs": [PAIR]})
        assert client == "anonymous"

    def test_search_validates_strategy_and_budget(self):
        with pytest.raises(BadRequest, match="unknown strategy"):
            normalize_request({"kind": "search", "preset": "smoke",
                               "strategy": "oracle"})
        with pytest.raises(BadRequest, match="budget"):
            normalize_request({"kind": "search", "preset": "smoke",
                               "budget": 0})


class TestJobKey:
    def test_equal_requests_equal_keys(self):
        a = {"kind": "warm", "pairs": [f"{PAIR[0]}/small"]}
        b = {"kind": "warm", "pairs": [PAIR]}
        ka = job_key(*normalize_request(a)[:2])
        kb = job_key(*normalize_request(b)[:2])
        assert ka == kb

    def test_different_params_different_keys(self):
        kind, params, _ = normalize_request(
            {"kind": "warm", "pairs": [PAIR]})
        other = dict(params, target_instructions=999)
        assert job_key(kind, params) != job_key(kind, other)

    def test_kind_is_part_of_the_key(self):
        _, params, _ = normalize_request({"kind": "sweep",
                                          "preset": "smoke"})
        _, search_params, _ = normalize_request(
            {"kind": "search", "preset": "smoke"})
        assert job_key("sweep", params) != job_key("search", search_params)


class TestEstimateStages:
    def test_replay_graph_is_exact(self):
        kind, params, _ = normalize_request({
            "kind": "replay", "workload": PAIR[0], "input": "small",
            "machine": {},
        })
        stages = estimate_stages(kind, params)
        assert sorted(stages) == ["compile", "replay", "run"]

    def test_warm_counts_both_sides(self):
        kind, params, _ = normalize_request(
            {"kind": "warm", "pairs": [PAIR]})
        stages = estimate_stages(kind, params)
        assert "compile" in stages and "synthesize" in stages

    def test_sweep_scales_with_space(self):
        kind, params, _ = normalize_request(
            {"kind": "sweep", "preset": "smoke"})
        kind2, params2, _ = normalize_request(
            {"kind": "search", "preset": "smoke", "budget": 1})
        assert len(estimate_stages(kind, params)) > \
            len(estimate_stages(kind2, params2))


class TestJobLifecycle:
    def test_states_and_events(self):
        registry = JobRegistry()
        job = registry.create("warm", {}, "c", "k" * 64)
        assert job.state == "queued"
        job.set_running()
        job.set_done({"nodes": 1})
        assert job.finished
        assert [e["event"] for e in job.events_since(0)] == \
            ["queued", "started", "done"]

    def test_failure_carries_error(self):
        job = JobRegistry().create("warm", {}, "c", "k" * 64)
        job.set_running()
        job.set_failed("boom")
        assert job.state == "failed"
        assert job.status()["error"] == "boom"

    def test_wait_unblocks_on_completion(self):
        job = JobRegistry().create("warm", {}, "c", "k" * 64)
        done = threading.Event()

        def finisher():
            job.set_running()
            job.set_done({})
            done.set()

        threading.Thread(target=finisher).start()
        assert job.wait(timeout=5.0)
        assert done.is_set()

    def test_events_since_pages(self):
        job = JobRegistry().create("warm", {}, "c", "k" * 64)
        job.add_event("point", index=0)
        assert [e["event"] for e in job.events_since(1)] == ["point"]

    def test_registry_counts(self):
        registry = JobRegistry()
        a = registry.create("warm", {}, "c", "a" * 64)
        b = registry.create("warm", {}, "c", "b" * 64)
        a.set_running()
        a.set_done({})
        counts = registry.counts()
        assert counts["done"] == 1
        assert counts["queued"] == 1
        assert registry.get(b.id) is b
        assert registry.get("nope") is None

    def test_ids_are_unique_and_keyed(self):
        registry = JobRegistry()
        a = registry.create("warm", {}, "c", "a" * 64)
        b = registry.create("warm", {}, "c", "a" * 64)
        assert a.id != b.id
        assert a.key[:8] in a.id


class TestSynthNormalization:
    """Synthetic workloads through the daemon: names and recipe-params
    objects normalize to the same canonical form, so both coalesce."""

    NAME = "synth:s7-int-f256-d2-t8-e50-c2"
    PARAMS = {"seed": 7, "mix": "int"}

    def test_recipe_params_fold_to_canonical_name(self):
        by_name = normalize_request({
            "kind": "replay", "workload": self.NAME, "input": "small"})
        by_params = normalize_request({
            "kind": "replay", "workload": self.PARAMS, "input": "small"})
        assert by_name == by_params
        kind, params, _ = by_params
        assert params["workload"] == self.NAME
        assert job_key(kind, params) == job_key(*by_name[:2])

    def test_recipe_params_in_warm_pairs(self):
        kind, params, _ = normalize_request({
            "kind": "warm", "pairs": [[self.PARAMS, "small"]],
            "coords": [["x86", 0]]})
        assert params["pairs"] == [[self.NAME, "small"]]

    def test_bad_recipe_params_are_400(self):
        with pytest.raises(BadRequest, match="bad synth recipe"):
            normalize_request({
                "kind": "replay", "workload": {"mix": "nope"},
                "input": "small"})

    def test_malformed_synth_name_is_400_with_grammar(self):
        with pytest.raises(BadRequest, match="synth names look like"):
            normalize_request({
                "kind": "replay", "workload": "synth:bogus",
                "input": "small"})

    def test_unknown_builtin_gets_suggestions(self):
        with pytest.raises(BadRequest, match="did you mean"):
            normalize_request({
                "kind": "replay", "workload": "dijkstr", "input": "small"})

    def test_estimate_prices_synth_like_builtin(self):
        kind, params, _ = normalize_request({
            "kind": "replay", "workload": self.NAME, "input": "small"})
        stages = estimate_stages(kind, params)
        assert stages  # the full org-side chain is priced
