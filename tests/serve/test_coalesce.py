"""Coalescing primitives: keyed mutexes, node sharing, job attachment."""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.engine.store import ArtifactStore
from repro.engine.tasks import Task
from repro.serve.coalesce import Coalescer, CoalescingRunner, KeyedMutex


def _keyer(task: Task) -> dict:
    """Key fields for synthetic test tasks (the real ``key_fields``
    fingerprints actual workload sources)."""
    return dict(task.payload, id=task.id)


class TestKeyedMutex:
    def test_serializes_same_key(self):
        mutex = KeyedMutex()
        order = []

        def worker(tag):
            with mutex.holding("k"):
                order.append((tag, "in"))
                time.sleep(0.01)
                order.append((tag, "out"))

        with ThreadPoolExecutor(4) as pool:
            list(pool.map(worker, range(4)))
        # Critical sections never interleave: in/out strictly alternate.
        assert [io for _, io in order] == ["in", "out"] * 4

    def test_distinct_keys_do_not_block(self):
        mutex = KeyedMutex()
        entered = threading.Event()
        release = threading.Event()

        def hold_a():
            with mutex.holding("a"):
                entered.set()
                release.wait(2.0)

        thread = threading.Thread(target=hold_a)
        thread.start()
        assert entered.wait(2.0)
        acquired_b = threading.Event()

        def try_b():
            with mutex.holding("b"):
                acquired_b.set()

        threading.Thread(target=try_b).start()
        assert acquired_b.wait(2.0)  # "b" proceeds while "a" is held
        release.set()
        thread.join()

    def test_entries_dropped_when_idle(self):
        mutex = KeyedMutex()
        with mutex.holding("x"):
            assert mutex.active_keys() == 1
        assert mutex.active_keys() == 0


def _counting_runner(counter, lock, seconds=0.0):
    def runner(task, deps):
        with lock:
            counter[task.id] = counter.get(task.id, 0) + 1
        if seconds:
            time.sleep(seconds)
        return f"value-of-{task.id}"

    return runner


class TestCoalescingRunner:
    def test_concurrent_same_node_executes_once(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        counter, lock = {}, threading.Lock()
        runner = CoalescingRunner(
            store, _counting_runner(counter, lock, seconds=0.02),
            _keyer)
        task = Task(id="compile:a", stage="compile",
                    payload={"workload": "w", "input": "i"})

        with ThreadPoolExecutor(8) as pool:
            results = list(pool.map(lambda _: runner(task, {}), range(8)))

        assert counter == {"compile:a": 1}
        assert set(results) == {"value-of-compile:a"}
        snap = runner.snapshot()
        assert snap["executed"] == 1
        assert snap["coalesced"] == 7

    def test_distinct_nodes_all_execute(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        counter, lock = {}, threading.Lock()
        runner = CoalescingRunner(store, _counting_runner(counter, lock),
                                  _keyer)
        tasks = [Task(id=f"run:{i}", stage="run", payload={"n": i})
                 for i in range(4)]
        with ThreadPoolExecutor(4) as pool:
            list(pool.map(lambda t: runner(t, {}), tasks))
        assert all(count == 1 for count in counter.values())
        assert runner.snapshot()["executed"] == 4

    def test_no_store_degrades_to_plain_runner(self):
        counter, lock = {}, threading.Lock()
        runner = CoalescingRunner(None, _counting_runner(counter, lock),
                                  _keyer)
        task = Task(id="t", stage="run", payload={})
        runner(task, {})
        runner(task, {})
        assert counter == {"t": 2}

    def test_private_store_counters_stay_separate(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "store")
        counter, lock = {}, threading.Lock()
        runner = CoalescingRunner(store, _counting_runner(counter, lock),
                                  _keyer)
        runner(Task(id="t", stage="run", payload={}), {})
        # The coalescing probe/put never touches the shared handle's
        # headline accounting.
        assert store.stats.misses == 0
        assert store.stats.puts == 0

    def test_pickles_to_wrapped_runner(self, tmp_path):
        from repro.engine.tasks import run_stage

        store = ArtifactStore(root=tmp_path / "store")
        runner = CoalescingRunner(store, run_stage, _keyer)
        assert pickle.loads(pickle.dumps(runner)) is run_stage


class _FakeJob:
    def __init__(self):
        self.waiters = 1
        self.finished = False

    def add_waiter(self):
        self.waiters += 1


class TestCoalescer:
    def test_attaches_to_in_flight_job(self):
        coalescer = Coalescer()
        first, coalesced = coalescer.attach_or_register("k", _FakeJob)
        assert not coalesced
        second, coalesced = coalescer.attach_or_register("k", _FakeJob)
        assert coalesced
        assert second is first
        assert first.waiters == 2

    def test_finished_job_is_not_attached_to(self):
        coalescer = Coalescer()
        job, _ = coalescer.attach_or_register("k", _FakeJob)
        job.finished = True
        fresh, coalesced = coalescer.attach_or_register("k", _FakeJob)
        assert not coalesced
        assert fresh is not job

    def test_release_clears_registration(self):
        coalescer = Coalescer()
        job, _ = coalescer.attach_or_register("k", _FakeJob)
        coalescer.release("k", job)
        assert coalescer.snapshot()["in_flight"] == 0

    def test_release_ignores_stale_job(self):
        coalescer = Coalescer()
        job, _ = coalescer.attach_or_register("k", _FakeJob)
        job.finished = True
        newer, _ = coalescer.attach_or_register("k", _FakeJob)
        coalescer.release("k", job)  # stale: newer owns the slot now
        assert coalescer.snapshot()["in_flight"] == 1
        coalescer.release("k", newer)
        assert coalescer.snapshot()["in_flight"] == 0

    def test_hit_miss_accounting(self):
        coalescer = Coalescer()
        coalescer.attach_or_register("a", _FakeJob)
        coalescer.attach_or_register("a", _FakeJob)
        coalescer.attach_or_register("b", _FakeJob)
        snap = coalescer.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 2
