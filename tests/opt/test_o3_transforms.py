"""O3 source-to-source transforms: inlining and unrolling."""

from repro.lang.parser import parse_program
from repro.lang.printer import format_program
from repro.opt.inline import inline_small_functions
from repro.opt.unroll import unroll_loops
from tests.conftest import run_source


class TestInlining:
    SOURCE = """
    int square(int x) { return x * x; }
    int main() {
      int total = 0;
      int i;
      for (i = 0; i < 10; i++) {
        total = total + square(i);
      }
      printf("%d", total);
      return 0;
    }
    """

    def test_call_disappears(self):
        program = inline_small_functions(parse_program(self.SOURCE))
        text = format_program(program)
        main_text = text[text.index("int main") :]
        assert "square(" not in main_text

    def test_original_ast_untouched(self):
        program = parse_program(self.SOURCE)
        inline_small_functions(program)
        assert "square" in format_program(program)

    def test_behaviour_preserved(self):
        assert run_source(self.SOURCE, opt_level=0).output == run_source(
            self.SOURCE, opt_level=3
        ).output

    def test_impure_argument_not_inlined(self):
        source = """
        int twice(int x) { return x + x; }
        int main() {
          int i = 3;
          printf("%d", twice(i++));
          return 0;
        }
        """
        program = inline_small_functions(parse_program(source))
        text = format_program(program)
        assert "twice(" in text[text.index("int main") :]

    def test_multi_statement_function_not_inlined(self):
        source = """
        int f(int x) { int y = x + 1; return y; }
        int main() { return f(3); }
        """
        program = inline_small_functions(parse_program(source))
        assert "f(3)" in format_program(program)


class TestUnrolling:
    SOURCE = """
    int data[32];
    int main() {
      int i;
      for (i = 0; i < 31; i++) {
        data[i] = i * 2;
      }
      int total = 0;
      for (i = 0; i < 32; i++) {
        total = total + data[i];
      }
      printf("%d", total);
      return 0;
    }
    """

    def test_unroll_produces_while_pair(self):
        program = unroll_loops(parse_program(self.SOURCE))
        text = format_program(program)
        assert text.count("while (") >= 2

    def test_behaviour_preserved_even_and_odd_trip(self):
        # 31 iterations (odd -> remainder loop used) and 32 (even).
        assert run_source(self.SOURCE, opt_level=0).output == run_source(
            self.SOURCE, opt_level=3
        ).output

    def test_loop_with_break_not_unrolled(self):
        source = """
        int main() {
          int i;
          int total = 0;
          for (i = 0; i < 10; i++) {
            if (i == 5) { break; }
            total = total + i;
          }
          printf("%d", total);
          return 0;
        }
        """
        program = unroll_loops(parse_program(source))
        assert "for (" in format_program(program)
        assert run_source(source, opt_level=3).output == "10"

    def test_bound_written_in_body_not_unrolled(self):
        source = """
        int main() {
          int n = 10;
          int i;
          int total = 0;
          for (i = 0; i < n; i++) {
            if (i == 4) { n = 6; }
            total++;
          }
          printf("%d", total);
          return 0;
        }
        """
        program = unroll_loops(parse_program(source))
        assert "for (" in format_program(program)
        assert run_source(source, opt_level=0).output == run_source(
            source, opt_level=3
        ).output

    def test_dynamic_branch_count_drops(self):
        # x86_64: unrolling is gated off on the register-starved x86.
        o2 = run_source(self.SOURCE, isa="x86_64", opt_level=2)
        o3 = run_source(self.SOURCE, isa="x86_64", opt_level=3)
        assert len(o3.branch_log) < len(o2.branch_log)
