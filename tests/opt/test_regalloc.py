"""Linear-scan register allocation tests."""

from hypothesis import given, settings, strategies as st

from repro.ir.builder import lower_program
from repro.lang.parser import parse_program
from repro.lang.semantics import analyze
from repro.opt.regalloc import allocate_registers
from tests.conftest import run_source


def build_func(source: str, name: str = "main"):
    program = parse_program(source)
    analyzer = analyze(program)
    ir = lower_program(program, analyzer, promote_scalars=True)
    return ir.functions[name]


MANY_LIVE = """
int main() {
  int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
  int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
  int total = a + b + c + d + e + f + g + h + i + j;
  total = total + a * b + c * d + e * f + g * h + i * j;
  printf("%d", total);
  return 0;
}
"""


class TestAllocation:
    def test_no_overlapping_assignments(self):
        """Temps with overlapping intervals never share a register."""
        func = build_func(MANY_LIVE)
        allocation = allocate_registers(func, 6, 6)
        # Rebuild intervals and check pairwise disjointness per register.
        from repro.opt.regalloc import _build_intervals

        intervals = {iv.temp: iv for iv in _build_intervals(func)}
        by_register: dict[int, list] = {}
        for temp, reg in allocation.registers.items():
            by_register.setdefault(reg, []).append(intervals[temp])
        for reg, ivs in by_register.items():
            ivs.sort(key=lambda iv: iv.start)
            for first, second in zip(ivs, ivs[1:]):
                assert first.end <= second.start or first.start >= second.end, (
                    f"register {reg} double-booked"
                )

    def test_spills_on_tiny_register_file(self):
        func = build_func(MANY_LIVE)
        allocation = allocate_registers(func, 4, 4)
        assert allocation.spill_count > 0

    def test_no_spills_on_huge_register_file(self):
        func = build_func(MANY_LIVE)
        allocation = allocate_registers(func, 64, 64)
        assert allocation.spill_count == 0

    def test_every_temp_gets_a_location(self):
        func = build_func(MANY_LIVE)
        allocation = allocate_registers(func, 6, 6)
        for blk in func.blocks:
            for instr in blk.instrs:
                for temp in instr.uses():
                    allocation.location(temp)  # raises KeyError if missing
                if instr.defs() is not None:
                    allocation.location(instr.defs())


class TestSpillCorrectness:
    """High-pressure programs must compute the same on every ISA."""

    def test_many_live_correct_everywhere(self):
        outputs = {
            run_source(MANY_LIVE, isa=isa, opt_level=level).output
            for isa in ("x86", "x86_64", "ia64")
            for level in (0, 1, 2, 3)
        }
        assert len(outputs) == 1

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 200), min_size=8, max_size=8))
    def test_pressure_expression_matches_python(self, values):
        names = "abcdefgh"
        decls = " ".join(
            f"int {name} = {value};" for name, value in zip(names, values)
        )
        expr = "a*b + c*d + e*f + g*h + (a+b+c+d)*(e+f+g+h) + a - b"
        source = f'int main() {{ {decls} printf("%d", {expr}); return 0; }}'
        a, b, c, d, e, f, g, h = values
        expected = a * b + c * d + e * f + g * h + (a + b + c + d) * (
            e + f + g + h
        ) + a - b
        for isa in ("x86", "ia64"):
            trace = run_source(source, isa=isa, opt_level=1)
            assert trace.output == str(expected)
