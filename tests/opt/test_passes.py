"""Unit tests for individual optimization passes."""

from repro.cc.driver import compile_to_ir
from repro.ir.builder import lower_program
from repro.ir.instructions import BinOp, Load, LoadConst, Store, UnOp
from repro.ir.verify import verify_program
from repro.lang.parser import parse_program
from repro.lang.semantics import analyze
from repro.opt.constant_folding import fold_constants
from repro.opt.copy_propagation import propagate_copies
from repro.opt.cse import eliminate_common_subexpressions
from repro.opt.dce import eliminate_dead_code
from repro.opt.fuse import fuse_memory_operands
from repro.opt.licm import hoist_loop_invariants
from repro.opt.promote_globals import promote_globals
from repro.opt.strength import reduce_strength
from tests.conftest import run_source


def build_ir(source: str, promote: bool = True):
    program = parse_program(source)
    analyzer = analyze(program)
    return lower_program(program, analyzer, promote_scalars=promote)


def all_instrs(ir, name="main"):
    return [i for blk in ir.functions[name].blocks for i in blk.instrs]


class TestConstantFolding:
    def test_constant_binop_folds(self):
        ir = build_ir("int main() { int x = 3 + 4 * 2; return x; }")
        # fold -> propagate the new constant -> fold the outer op.
        fold_constants(ir)
        propagate_copies(ir)
        fold_constants(ir)
        consts = [i for i in all_instrs(ir) if isinstance(i, LoadConst)]
        assert any(c.value == 11 for c in consts)

    def test_wrapping_semantics(self):
        ir = build_ir("int main() { int x = 2147483647 + 1; return x; }")
        fold_constants(ir)
        consts = [i.value for i in all_instrs(ir) if isinstance(i, LoadConst)]
        assert 0x80000000 in consts

    def test_identity_add_zero(self):
        ir = build_ir("int main() { int y = 5; int x = y + 0; return x; }")
        changed = fold_constants(ir)
        assert changed >= 1
        assert not any(
            isinstance(i, BinOp) and i.op == "add" for i in all_instrs(ir)
        )

    def test_mul_by_zero(self):
        ir = build_ir("int main() { int y = 5; return y * 0; }")
        fold_constants(ir)
        assert not any(isinstance(i, BinOp) for i in all_instrs(ir))

    def test_division_by_zero_not_folded(self):
        ir = build_ir("int main() { return 1 / 0; }")
        fold_constants(ir)
        assert any(
            isinstance(i, BinOp) and i.op == "div" for i in all_instrs(ir)
        )

    def test_folding_preserves_behaviour(self):
        source = "int main() { int x = (3 << 4) | 5; printf(\"%d\", x - 1 * 1); return 0; }"
        assert run_source(source, opt_level=0).output == run_source(
            source, opt_level=2
        ).output


class TestCSEAndCopyProp:
    def test_repeated_expression_eliminated(self):
        ir = build_ir(
            "int g; int main() { int a = g * 3; int b = g * 3; return a + b; }"
        )
        changed = eliminate_common_subexpressions(ir)
        assert changed >= 1

    def test_loads_killed_by_store(self):
        ir = build_ir(
            "int g; int main() { int a = g; g = 7; int b = g; return a + b; }"
        )
        before = len([i for i in all_instrs(ir) if isinstance(i, Load)])
        eliminate_common_subexpressions(ir)
        after = len([i for i in all_instrs(ir) if isinstance(i, Load)])
        assert after == before  # second load must survive the store

    def test_copy_propagation_forwards_temps(self):
        ir = build_ir("int main() { int a = 4; int b = a; return b + b; }")
        changed = propagate_copies(ir)
        assert changed >= 1

    def test_semantics_preserved_under_o2(self, loopy_source):
        assert run_source(loopy_source, opt_level=0).output == run_source(
            loopy_source, opt_level=2
        ).output


class TestDCE:
    def test_unused_computation_removed(self):
        ir = build_ir("int main() { int a = 3 * 7; return 0; }")
        removed = eliminate_dead_code(ir)
        assert removed >= 1
        assert not any(isinstance(i, BinOp) for i in all_instrs(ir))

    def test_stores_never_removed(self):
        ir = build_ir("int g; int main() { g = 42; return 0; }")
        eliminate_dead_code(ir)
        assert any(isinstance(i, Store) for i in all_instrs(ir))

    def test_dead_chain_unravels(self):
        ir = build_ir(
            "int main() { int a = 1; int b = a + 2; int c = b * 3; return 0; }"
        )
        eliminate_dead_code(ir)
        assert not any(isinstance(i, BinOp) for i in all_instrs(ir))


class TestStrengthReduction:
    def test_mul_pow2_becomes_shift(self):
        ir = build_ir("int main() { int a = 5; return a * 8; }")
        reduce_strength(ir)
        ops = [i.op for i in all_instrs(ir) if isinstance(i, BinOp)]
        assert "shl" in ops
        assert "mul" not in ops

    def test_unsigned_div_pow2_becomes_shr(self):
        ir = build_ir("int main() { unsigned a = 40u; return (int)(a / 4u); }")
        reduce_strength(ir)
        ops = [i.op for i in all_instrs(ir) if isinstance(i, BinOp)]
        assert "shr" in ops

    def test_signed_div_left_alone(self):
        ir = build_ir("int main() { int a = -40; return a / 4; }")
        reduce_strength(ir)
        ops = [i.op for i in all_instrs(ir) if isinstance(i, BinOp)]
        assert "div" in ops

    def test_umod_pow2_becomes_and(self):
        ir = build_ir("int main() { unsigned a = 40u; return (int)(a % 8u); }")
        reduce_strength(ir)
        ops = [i.op for i in all_instrs(ir) if isinstance(i, BinOp)]
        assert "and" in ops

    def test_strength_preserves_negative_division(self):
        source = 'int main() { int a = -40; printf("%d %d", a / 4, a % 8); return 0; }'
        assert run_source(source, opt_level=0).output == run_source(
            source, opt_level=2
        ).output


class TestLICM:
    SOURCE = """
    int g;
    int main() {
      int total = 0;
      int i;
      int a = 7;
      for (i = 0; i < 10; i++) {
        total = total + a * 13;
      }
      return total;
    }
    """

    def test_invariant_hoisted(self):
        ir = build_ir(self.SOURCE)
        hoisted = hoist_loop_invariants(ir)
        assert hoisted >= 1
        labels = [blk.label for blk in ir.functions["main"].blocks]
        assert any(label.startswith("preheader") for label in labels)
        verify_program(ir)

    def test_licm_preserves_behaviour(self):
        base = run_source(self.SOURCE, opt_level=0)
        optimized = run_source(self.SOURCE, opt_level=2)
        assert base.exit_value == optimized.exit_value


class TestGlobalPromotion:
    SOURCE = """
    int g;
    int main() {
      int i;
      for (i = 0; i < 100; i++) {
        g = g + i;
      }
      printf("%d", g);
      return 0;
    }
    """

    def test_loop_loads_become_moves(self):
        ir = build_ir(self.SOURCE)
        promoted = promote_globals(ir)
        assert promoted >= 1
        verify_program(ir)

    def test_promotion_preserves_behaviour(self):
        assert run_source(self.SOURCE, opt_level=0).output == run_source(
            self.SOURCE, opt_level=2
        ).output

    def test_dynamic_loads_reduced(self):
        o1 = run_source(self.SOURCE, opt_level=1)
        o0 = run_source(self.SOURCE, opt_level=0)
        loads_o0 = o0.instruction_mix().by_klass.get("load", 0)
        loads_o1 = o1.instruction_mix().by_klass.get("load", 0)
        assert loads_o1 < loads_o0 / 2

    def test_call_in_loop_blocks_promotion(self):
        source = """
        int g;
        void bump() { g = g + 1; }
        int main() {
          int i;
          for (i = 0; i < 10; i++) { bump(); }
          printf("%d", g);
          return 0;
        }
        """
        assert run_source(source, opt_level=2).output == "10"


class TestFusion:
    def test_load_op_fused(self):
        program, ir, stats = compile_to_ir(
            "int g; int main() { int a = 5; return a + g; }",
            opt_level=1,
            cisc_fusion=True,
        )
        assert stats.get("fuse", 0) >= 1

    def test_fusion_preserves_behaviour(self, loopy_source):
        x86 = run_source(loopy_source, isa="x86", opt_level=2)
        ia64 = run_source(loopy_source, isa="ia64", opt_level=2)
        assert x86.output == ia64.output

    def test_fusion_reduces_instruction_count(self, loopy_source):
        x86 = run_source(loopy_source, isa="x86_64", opt_level=2)
        ia64 = run_source(loopy_source, isa="ia64", opt_level=2)
        assert x86.instructions <= ia64.instructions
