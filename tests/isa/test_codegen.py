"""Code generation and linking tests."""

import pytest

from repro.cc.driver import compile_program
from repro.isa.linker import LinkError, link_program
from repro.isa.targets import IA64, ISA_BY_NAME, X86, X86_64
from repro.ir.builder import lower_program
from repro.lang.parser import parse_program
from repro.lang.semantics import analyze
from tests.conftest import run_source


class TestTargets:
    def test_three_isas_registered(self):
        assert set(ISA_BY_NAME) == {"x86", "x86_64", "ia64"}

    def test_register_budgets(self):
        assert X86.int_regs == 8
        assert X86_64.int_regs == 16
        assert IA64.int_regs == 32
        assert X86.allocatable_int == 6

    def test_scratch_registers_reserved(self):
        assert X86.int_scratch == (6, 7)
        assert IA64.float_scratch == (30, 31)

    def test_only_cisc_targets_fuse(self):
        assert X86.cisc_fusion
        assert X86_64.cisc_fusion
        assert not IA64.cisc_fusion


class TestBinaryStructure:
    def test_uids_unique_and_dense(self, fib_source):
        binary = compile_program(fib_source).binary
        uids = [
            ins.uid
            for func in binary.functions
            for blk in func.blocks
            for ins in blk.instrs
        ]
        assert sorted(uids) == list(range(len(uids)))
        assert binary.total_static_instructions == len(uids)

    def test_gbids_unique_and_dense(self, fib_source):
        binary = compile_program(fib_source).binary
        gbids = [blk.gbid for func in binary.functions for blk in func.blocks]
        assert sorted(gbids) == list(range(len(gbids)))

    def test_uid_map_roundtrip(self, fib_source):
        binary = compile_program(fib_source).binary
        for func in binary.functions:
            for blk in func.blocks:
                for ins in blk.instrs:
                    assert binary.instr_by_uid(ins.uid) is ins

    def test_calls_terminate_blocks(self, fib_source):
        """Pin-style BBLs: a call is always the last instruction."""
        binary = compile_program(fib_source).binary
        for func in binary.functions:
            for blk in func.blocks:
                for ins in blk.instrs[:-1]:
                    assert ins.op != "call"

    def test_globals_have_addresses(self):
        binary = compile_program(
            "int a; int t[10]; int main() { return a + t[0]; }"
        ).binary
        assert binary.globals_layout["a"] >= binary.data_base
        assert (
            binary.globals_layout["t"] != binary.globals_layout["a"]
        )
        assert binary.stack_base > binary.globals_layout["t"] + 10

    def test_missing_main_rejected(self):
        program = parse_program("int main() { return 0; }")
        analyzer = analyze(program)
        ir = lower_program(program, analyzer)
        del ir.functions["main"]
        with pytest.raises(LinkError, match="main"):
            link_program(ir, X86)


class TestCrossISA:
    def test_same_output_everywhere(self, loopy_source):
        outputs = {
            run_source(loopy_source, isa=isa, opt_level=level).output
            for isa in ("x86", "x86_64", "ia64")
            for level in (0, 1, 2, 3)
        }
        assert len(outputs) == 1

    def test_instruction_counts_differ_per_isa(self, loopy_source):
        """Fusion and register pressure make the ISAs distinguishable."""
        counts = {
            isa: run_source(loopy_source, isa=isa, opt_level=2).instructions
            for isa in ("x86", "x86_64", "ia64")
        }
        assert len(set(counts.values())) >= 2

    def test_o0_instruction_counts_equal_across_isas(self, loopy_source):
        """At -O0 (no fusion, no pressure: everything is in memory), the
        three ISAs execute the same instruction stream."""
        counts = {
            isa: run_source(loopy_source, isa=isa, opt_level=0).instructions
            for isa in ("x86", "x86_64", "ia64")
        }
        assert len(set(counts.values())) == 1

    def test_optimization_reduces_instructions(self, loopy_source):
        o0 = run_source(loopy_source, isa="x86_64", opt_level=0).instructions
        o1 = run_source(loopy_source, isa="x86_64", opt_level=1).instructions
        o2 = run_source(loopy_source, isa="x86_64", opt_level=2).instructions
        assert o1 < o0
        assert o2 <= o1 * 1.05


class TestBranchEncoding:
    def test_conditional_branch_has_fallthrough(self, fib_source):
        binary = compile_program(fib_source).binary
        for func in binary.functions:
            for blk in func.blocks:
                if blk.instrs and blk.instrs[-1].op in ("bt", "bf"):
                    assert blk.fall_through is not None
                    assert blk.instrs[-1].target is not None

    def test_fused_ops_count_as_memory(self):
        binary = compile_program(
            "int g; int main() { int a = 5; return a + g; }", "x86", 1
        ).binary
        fused = [
            ins
            for func in binary.functions
            for blk in func.blocks
            for ins in blk.instrs
            if ins.addr is not None and ins.klass == "ialu" and ins.op == "add"
        ]
        assert fused
        assert all(ins.is_memory for ins in fused)
