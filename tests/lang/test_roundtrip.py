"""Printer/parser round-trip tests, including property-based ones.

Invariant: ``format_program(parse(format_program(ast))) ==
format_program(ast)`` — printing is a fixed point after one round trip,
and semantics (via compile+run) are preserved.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.lang.parser import parse_program
from repro.lang.printer import format_expr, format_program
from repro.lang import ast_nodes as ast
from tests.conftest import FIB_SOURCE, LOOPY_SOURCE, run_source


class TestFixedSources:
    def test_fib_roundtrip_fixed_point(self):
        text = format_program(parse_program(FIB_SOURCE))
        again = format_program(parse_program(text))
        assert text == again

    def test_loopy_roundtrip_fixed_point(self):
        text = format_program(parse_program(LOOPY_SOURCE))
        again = format_program(parse_program(text))
        assert text == again

    def test_roundtrip_preserves_behaviour(self):
        direct = run_source(FIB_SOURCE)
        round_tripped = run_source(format_program(parse_program(FIB_SOURCE)))
        assert direct.output == round_tripped.output
        assert direct.instructions == round_tripped.instructions


# -- random expression generator --------------------------------------------

_INT_VARS = ("a", "b", "c")
_BIN_OPS = ("+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", ">")


def _expr_strategy() -> st.SearchStrategy:
    leaves = st.one_of(
        st.integers(min_value=0, max_value=1000).map(lambda v: ast.IntLit(value=v)),
        st.sampled_from(_INT_VARS).map(lambda n: ast.Ident(name=n)),
    )

    def extend(children):
        binop = st.builds(
            lambda op, left, right: ast.BinOp(op=op, left=left, right=right),
            st.sampled_from(_BIN_OPS),
            children,
            children,
        )
        unop = st.builds(
            lambda op, operand: ast.UnaryOp(op=op, operand=operand),
            st.sampled_from(("-", "~", "!")),
            children,
        )
        ternary = st.builds(
            lambda c, t, e: ast.Ternary(cond=c, then=t, other=e),
            children,
            children,
            children,
        )
        return st.one_of(binop, unop, ternary)

    return st.recursive(leaves, extend, max_leaves=12)


@settings(max_examples=120, deadline=None)
@given(_expr_strategy())
def test_random_expression_roundtrip(expr):
    """Printed expressions re-parse to an identically-printing tree."""
    source = (
        "int main() { int a = 1; int b = 2; int c = 3; return "
        + format_expr(expr)
        + "; }"
    )
    program = parse_program(source)
    printed = format_program(program)
    assert format_program(parse_program(printed)) == printed


@settings(max_examples=40, deadline=None)
@given(_expr_strategy(), st.integers(min_value=0, max_value=2**31 - 1))
def test_random_expression_semantics_stable(expr, seed):
    """Round-tripping never changes run-time behaviour.

    Division/modulo are excluded by the generator (trap risk), and the
    program prints the expression value so the whole pipeline is
    exercised.
    """
    rng = random.Random(seed)
    a, b, c = rng.randrange(100), rng.randrange(100), rng.randrange(100)
    body = (
        f"int main() {{ int a = {a}; int b = {b}; int c = {c}; "
        f'printf("%d", {format_expr(expr)}); return 0; }}'
    )
    first = run_source(body)
    second = run_source(format_program(parse_program(body)))
    assert first.output == second.output
