"""Printer statement-level tests (round-trips live in test_roundtrip)."""

from repro.lang.parser import parse_program
from repro.lang.printer import format_expr, format_program
from repro.lang import ast_nodes as ast


def reformat(source: str) -> str:
    return format_program(parse_program(source))


class TestExpressions:
    def test_precedence_parens_added(self):
        expr = ast.BinOp(
            op="*",
            left=ast.BinOp(op="+", left=ast.IntLit(value=1), right=ast.IntLit(value=2)),
            right=ast.IntLit(value=3),
        )
        assert format_expr(expr) == "(1 + 2) * 3"

    def test_no_redundant_parens(self):
        expr = ast.BinOp(
            op="+",
            left=ast.IntLit(value=1),
            right=ast.BinOp(op="*", left=ast.IntLit(value=2), right=ast.IntLit(value=3)),
        )
        assert format_expr(expr) == "1 + 2 * 3"

    def test_left_assoc_subtraction_parenthesized_on_right(self):
        expr = ast.BinOp(
            op="-",
            left=ast.IntLit(value=1),
            right=ast.BinOp(op="-", left=ast.IntLit(value=2), right=ast.IntLit(value=3)),
        )
        assert format_expr(expr) == "1 - (2 - 3)"

    def test_unsigned_suffix_kept(self):
        text = reformat("unsigned x = 42u; int main() { return 0; }")
        assert "42u" in text

    def test_big_unsigned_as_hex(self):
        text = reformat("unsigned x = 3988292384u; int main() { return 0; }")
        assert "0xedb88320u" in text

    def test_float_formatting(self):
        text = reformat("float x = 2.5; int main() { return 0; }")
        assert "2.5" in text

    def test_string_escapes_roundtrip(self):
        source = 'int main() { printf("a\\n\\tb"); return 0; }'
        assert reformat(reformat(source)) == reformat(source)

    def test_char_literal(self):
        text = reformat("int main() { int c = 'x'; return c; }")
        assert "'x'" in text

    def test_double_unary_minus_spaced(self):
        expr = ast.UnaryOp(
            op="-", operand=ast.UnaryOp(op="-", operand=ast.Ident(name="x"))
        )
        assert format_expr(expr) == "- -x"


class TestStatements:
    def test_else_if_chain(self):
        source = (
            "int main() { int x = 1; "
            "if (x == 0) { return 0; } else if (x == 1) { return 1; } "
            "else { return 2; } }"
        )
        text = reformat(source)
        assert text.count("if (") == 2
        assert "else" in text

    def test_for_with_empty_heads(self):
        text = reformat("int main() { for (;;) { break; } return 0; }")
        assert "for (; ; )" in text

    def test_do_while(self):
        text = reformat(
            "int main() { int i = 0; do { i++; } while (i < 3); return i; }"
        )
        assert "do {" in text
        assert "} while (i < 3);" in text

    def test_array_initializer(self):
        text = reformat("int t[3] = {1, 2, 3}; int main() { return t[0]; }")
        assert "int t[3] = {1, 2, 3};" in text

    def test_array_param(self):
        text = reformat(
            "int f(int a[], int n) { return a[n]; } "
            "int t[2]; int main() { return f(t, 1); }"
        )
        assert "int f(int a[], int n)" in text

    def test_nested_blocks_indent(self):
        text = reformat(
            "int main() { int i; for (i = 0; i < 2; i++) { "
            "if (i) { printf(\"x\"); } } return 0; }"
        )
        lines = text.splitlines()
        printf_line = next(line for line in lines if "printf" in line)
        assert printf_line.startswith("      ")  # three levels deep
