"""Parser unit tests."""

import pytest

from repro.lang import ast_nodes as ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program


def parse_main(body: str) -> ast.FuncDecl:
    program = parse_program("int main() {" + body + "}")
    return program.function("main")


def parse_expr(expr: str) -> ast.Expr:
    func = parse_main(f"return {expr};")
    return func.body.stmts[0].value


class TestTopLevel:
    def test_globals_and_functions_separate(self):
        program = parse_program(
            "int g; int f() { return 1; } float h[4]; int main() { return 0; }"
        )
        assert [d.name for d in program.globals] == ["g", "h"]
        assert [f.name for f in program.functions] == ["f", "main"]

    def test_global_array_with_initializer(self):
        program = parse_program("int t[3] = {1, 2, 3}; int main() { return 0; }")
        decl = program.globals[0]
        assert decl.array_length == 3
        assert [item.value for item in decl.init] == [1, 2, 3]

    def test_trailing_comma_in_initializer(self):
        program = parse_program("int t[2] = {1, 2,}; int main() { return 0; }")
        assert len(program.globals[0].init) == 2

    def test_function_params(self):
        program = parse_program("int f(int a, float b, int c[]) { return a; }")
        params = program.function("f").params
        assert [p.name for p in params] == ["a", "b", "c"]
        assert [p.is_array for p in params] == [False, False, True]

    def test_void_param_list(self):
        program = parse_program("int f(void) { return 1; }")
        assert program.function("f").params == []

    def test_unsigned_int_synonym(self):
        program = parse_program("unsigned int x; int main() { return 0; }")
        assert str(program.globals[0].base_type) == "unsigned"

    def test_stray_token_rejected(self):
        with pytest.raises(ParseError):
            parse_program("garbage")


class TestStatements:
    def test_if_else_binding(self):
        func = parse_main("if (1) if (2) return 1; else return 2; return 3;")
        outer = func.body.stmts[0]
        assert isinstance(outer, ast.If)
        assert outer.other is None  # else binds to the inner if
        inner = outer.then
        assert isinstance(inner, ast.If)
        assert inner.other is not None

    def test_for_with_decl_init(self):
        func = parse_main("for (int i = 0; i < 4; i++) { } return 0;")
        loop = func.body.stmts[0]
        assert isinstance(loop.init, ast.Decl)
        assert loop.init.name == "i"

    def test_for_headless(self):
        func = parse_main("for (;;) { break; } return 0;")
        loop = func.body.stmts[0]
        assert loop.init is None
        assert loop.cond is None
        assert loop.step is None

    def test_do_while(self):
        func = parse_main("int i = 0; do { i++; } while (i < 3); return i;")
        loop = func.body.stmts[1]
        assert isinstance(loop, ast.DoWhile)

    def test_empty_statement(self):
        func = parse_main("; return 0;")
        assert isinstance(func.body.stmts[0], ast.Block)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_main("int x = 1 return x;")

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse_program("int main() { return 0;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert isinstance(expr, ast.BinOp)
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_below_add(self):
        expr = parse_expr("1 << 2 + 3")
        assert expr.op == "<<"
        assert expr.right.op == "+"

    def test_precedence_bitand_below_equality(self):
        expr = parse_expr("a == b & c == d")
        # & binds looser than ==: (a==b) & (c==d)
        assert expr.op == "&"
        assert expr.left.op == "=="
        assert expr.right.op == "=="

    def test_logical_lowest(self):
        expr = parse_expr("a + 1 && b | c")
        assert expr.op == "&&"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus_and_not(self):
        expr = parse_expr("-~x")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "-"
        assert expr.operand.op == "~"

    def test_unary_plus_is_noop(self):
        expr = parse_expr("+x")
        assert isinstance(expr, ast.Ident)

    def test_cast(self):
        expr = parse_expr("(float)x")
        assert isinstance(expr, ast.Cast)
        assert str(expr.target) == "float"

    def test_parenthesized_expr_is_not_cast(self):
        expr = parse_expr("(x) + 1")
        assert isinstance(expr, ast.BinOp)

    def test_ternary(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr, ast.Ternary)
        assert isinstance(expr.other, ast.Ternary)  # right associative

    def test_assignment_right_associative(self):
        func = parse_main("int a; int b; a = b = 3; return a;")
        assign = func.body.stmts[2].expr
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.Assign)

    def test_compound_assignment(self):
        func = parse_main("int a = 1; a += 2; return a;")
        assign = func.body.stmts[1].expr
        assert assign.op == "+="

    def test_assignment_to_rvalue_rejected(self):
        with pytest.raises(ParseError):
            parse_main("1 = 2;")

    def test_incdec_prefix_postfix(self):
        pre = parse_expr("++x")
        post = parse_expr("x--")
        assert pre.prefix is True
        assert post.prefix is False
        assert post.op == "--"

    def test_call_with_args(self):
        expr = parse_expr("f(1, x + 2)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2

    def test_array_reference(self):
        expr = parse_expr("t[i + 1]")
        assert isinstance(expr, ast.ArrayRef)
        assert expr.base == "t"

    def test_incdec_requires_lvalue(self):
        with pytest.raises(ParseError):
            parse_expr("++(a + b)")
