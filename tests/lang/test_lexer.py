"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_eof_only(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        tokens = tokenize("foo_bar99")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "foo_bar99"

    def test_keywords_are_not_identifiers(self):
        assert kinds("int unsigned float void if else for while do") == [
            TokenKind.KW_INT,
            TokenKind.KW_UNSIGNED,
            TokenKind.KW_FLOAT,
            TokenKind.KW_VOID,
            TokenKind.KW_IF,
            TokenKind.KW_ELSE,
            TokenKind.KW_FOR,
            TokenKind.KW_WHILE,
            TokenKind.KW_DO,
        ]

    def test_double_maps_to_own_keyword(self):
        assert kinds("double")[0] is TokenKind.KW_DOUBLE

    def test_keyword_prefix_identifier(self):
        tokens = tokenize("integer iffy")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[1].kind is TokenKind.IDENT


class TestNumbers:
    def test_decimal_int(self):
        assert tokenize("12345")[0].value == 12345

    def test_hex_int(self):
        assert tokenize("0xFF")[0].value == 255

    def test_unsigned_suffix(self):
        token = tokenize("42u")[0]
        assert token.value == 42
        assert token.text.endswith("u")

    def test_unsigned_capital_suffix(self):
        assert tokenize("42U")[0].text.endswith("u")

    def test_float_with_fraction(self):
        token = tokenize("3.25")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.value == 3.25

    def test_float_with_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0

    def test_float_negative_exponent(self):
        assert tokenize("2.5e-2")[0].value == pytest.approx(0.025)

    def test_malformed_hex_raises(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_integer_then_member_like_dot_is_error(self):
        with pytest.raises(LexError):
            tokenize("1 . @")


class TestStringsAndChars:
    def test_simple_string(self):
        assert tokenize('"hello"')[0].value == "hello"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\tc"')[0].value == "a\nb\tc"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_string_with_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_char_literal(self):
        token = tokenize("'a'")[0]
        assert token.kind is TokenKind.CHAR_LIT
        assert token.value == ord("a")

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == ord("\n")

    def test_unterminated_char(self):
        with pytest.raises(LexError):
            tokenize("'a")


class TestOperators:
    def test_maximal_munch_shift_assign(self):
        assert kinds("a <<= 2") == [
            TokenKind.IDENT,
            TokenKind.LSHIFT_ASSIGN,
            TokenKind.INT_LIT,
        ]

    def test_shift_vs_relational(self):
        assert kinds("a << b < c") == [
            TokenKind.IDENT,
            TokenKind.LSHIFT,
            TokenKind.IDENT,
            TokenKind.LT,
            TokenKind.IDENT,
        ]

    def test_increment_vs_plus(self):
        assert kinds("a++ + b") == [
            TokenKind.IDENT,
            TokenKind.PLUS_PLUS,
            TokenKind.PLUS,
            TokenKind.IDENT,
        ]

    def test_logical_operators(self):
        assert kinds("a && b || !c") == [
            TokenKind.IDENT,
            TokenKind.AND_AND,
            TokenKind.IDENT,
            TokenKind.OR_OR,
            TokenKind.BANG,
            TokenKind.IDENT,
        ]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("@")


class TestCommentsAndPositions:
    def test_line_comment_skipped(self):
        assert kinds("a // comment\n b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\n y */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_line_numbers_advance(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3
