"""Semantic analysis tests."""

import pytest

from repro.lang.errors import SemanticError
from repro.lang.parser import parse_program
from repro.lang.semantics import analyze
from repro.lang.types import FLOAT, INT, UNSIGNED


def check(source: str):
    return analyze(parse_program(source))


def check_main(body: str):
    return check("int main() {" + body + "}")


class TestDeclarations:
    def test_undefined_variable(self):
        with pytest.raises(SemanticError, match="undefined variable"):
            check_main("return x;")

    def test_redefinition_same_scope(self):
        with pytest.raises(SemanticError, match="redefinition"):
            check_main("int x; int x; return 0;")

    def test_shadowing_in_inner_scope_allowed(self):
        check_main("int x = 1; { int x = 2; } return x;")

    def test_void_variable_rejected(self):
        with pytest.raises(SemanticError):
            check("void x; int main() { return 0; }")

    def test_global_initializer_must_be_constant(self):
        with pytest.raises(SemanticError, match="constant"):
            check("int h; int g = h + 1; int main() { return 0; }")

    def test_global_constant_folding_allowed(self):
        check("int g = 3 * 4 + (1 << 2); int main() { return g; }")

    def test_array_needs_positive_length(self):
        with pytest.raises(SemanticError):
            check("int a[0]; int main() { return 0; }")

    def test_too_many_initializers(self):
        with pytest.raises(SemanticError):
            check("int a[2] = {1, 2, 3}; int main() { return 0; }")

    def test_missing_main(self):
        with pytest.raises(SemanticError, match="main"):
            check("int f() { return 1; }")


class TestTypes:
    def test_int_plus_float_is_float(self):
        analyzer = check_main("float y = 1 + 2.0; return 0;")
        assert analyzer is not None

    def test_arithmetic_types_annotated(self):
        program = parse_program("int main() { int x = 1; return x + 2u; }")
        analyze(program)
        ret = program.function("main").body.stmts[1]
        assert ret.value.ctype == UNSIGNED

    def test_float_annotated(self):
        program = parse_program("int main() { float f = 0.5; return (int)(f * 2.0); }")
        analyze(program)
        ret = program.function("main").body.stmts[1]
        assert ret.value.ctype == INT

    def test_modulo_requires_integers(self):
        check_main("float f = 1.0; return 3 % ((int)f + 2);")  # ok once cast
        with pytest.raises(SemanticError):
            check_main("return 3.0 % 2;")

    def test_shift_requires_integers(self):
        with pytest.raises(SemanticError):
            check_main("return 1.0 << 2;")

    def test_bitnot_requires_integer(self):
        with pytest.raises(SemanticError):
            check_main("return ~1.5;")

    def test_comparison_yields_int(self):
        program = parse_program("int main() { return 1.5 < 2.5; }")
        analyze(program)
        ret = program.function("main").body.stmts[0]
        assert ret.value.ctype == INT

    def test_incdec_requires_integer(self):
        with pytest.raises(SemanticError):
            check_main("float f = 1.0; f++; return 0;")


class TestFunctions:
    def test_call_arity_checked(self):
        with pytest.raises(SemanticError, match="takes"):
            check("int f(int a) { return a; } int main() { return f(); }")

    def test_undefined_function(self):
        with pytest.raises(SemanticError, match="undefined function"):
            check_main("return nope(1);")

    def test_array_argument_passed_by_name(self):
        check(
            "int sum(int a[], int n) { return a[0] + n; }"
            "int t[4]; int main() { return sum(t, 4); }"
        )

    def test_array_argument_element_mismatch(self):
        with pytest.raises(SemanticError):
            check(
                "int sum(int a[]) { return a[0]; }"
                "float t[4]; int main() { return sum(t); }"
            )

    def test_scalar_where_array_expected(self):
        with pytest.raises(SemanticError):
            check("int f(int a[]) { return a[0]; } int main() { return f(3); }")

    def test_void_return_with_value(self):
        with pytest.raises(SemanticError):
            check("void f() { return 3; } int main() { return 0; }")

    def test_nonvoid_return_without_value(self):
        with pytest.raises(SemanticError):
            check("int f() { return; } int main() { return 0; }")

    def test_recursion_allowed(self):
        check("int f(int n) { if (n) { return f(n - 1); } return 0; }"
              "int main() { return f(3); }")


class TestControlAndBuiltins:
    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            check_main("break; return 0;")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue"):
            check_main("continue; return 0;")

    def test_break_inside_loop_ok(self):
        check_main("while (1) { break; } return 0;")

    def test_printf_needs_format(self):
        with pytest.raises(SemanticError):
            check_main("int x = 0; printf(x); return 0;")

    def test_printf_arity_mismatch(self):
        with pytest.raises(SemanticError, match="printf format"):
            check_main('printf("%d %d", 1); return 0;')

    def test_printf_float_conversion_type(self):
        with pytest.raises(SemanticError, match="%f"):
            check_main('printf("%f", 1); return 0;')

    def test_printf_int_conversion_type(self):
        with pytest.raises(SemanticError):
            check_main('printf("%d", 1.5); return 0;')

    def test_printf_percent_literal_ok(self):
        check_main('printf("100%%"); return 0;')

    def test_math_builtin_types(self):
        check_main("float y = sqrt(2.0) + sin(1.0) * cos(0.5); return (int)y;")

    def test_string_outside_printf_rejected(self):
        with pytest.raises(SemanticError):
            check_main('int x = "abc"; return 0;')
