"""Structured logging: line shape, level gating, env-var default."""

import io
import re

from repro.obs.log import LOG_LEVEL_ENV, StructuredLogger, env_level

LINE = re.compile(
    r"^\[(?P<name>[^\]]+)\] "
    r"(?P<stamp>\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z) "
    r"(?P<level>DEBUG|INFO|WARNING|ERROR)"
    r"(?: job=(?P<job>\S+))? "
    r"(?P<message>.*)$"
)


def _logger(level=None):
    stream = io.StringIO()
    return StructuredLogger("repro-test", stream=stream, level=level), stream


class TestLineShape:
    def test_basic_line(self):
        log, stream = _logger()
        log("hello world")
        match = LINE.match(stream.getvalue().rstrip("\n"))
        assert match is not None
        assert match["name"] == "repro-test"
        assert match["level"] == "INFO"
        assert match["message"] == "hello world"
        assert match["job"] is None

    def test_job_id_included(self):
        log, stream = _logger()
        log.error("failed", job="j-0001")
        match = LINE.match(stream.getvalue().rstrip("\n"))
        assert match["level"] == "ERROR"
        assert match["job"] == "j-0001"

    def test_grep_compatible_prefix(self):
        # CI greps for "[repro-serve] " + a message substring; the name
        # must lead the line and the message must appear verbatim.
        stream = io.StringIO()
        StructuredLogger("repro-serve", stream=stream)(
            "listening on http://127.0.0.1:8023")
        line = stream.getvalue()
        assert line.startswith("[repro-serve] ")
        assert "listening on http://127.0.0.1:8023" in line


class TestLevelGating:
    def test_below_threshold_suppressed(self):
        log, stream = _logger(level="warning")
        log.info("quiet")
        log.debug("quieter")
        log.warning("loud")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert "loud" in lines[0]

    def test_default_level_hides_debug(self):
        log, stream = _logger()
        log.debug("hidden")
        assert stream.getvalue() == ""

    def test_unknown_level_falls_back_to_info(self):
        log, _ = _logger(level="chatty")
        assert log.level == "info"


class TestEnvLevel:
    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "debug")
        assert env_level() == "debug"
        log, stream = _logger()
        log.debug("visible now")
        assert "visible now" in stream.getvalue()

    def test_unset_defaults_to_info(self, monkeypatch):
        monkeypatch.delenv(LOG_LEVEL_ENV, raising=False)
        assert env_level() == "info"

    def test_garbage_value_defaults_to_info(self, monkeypatch):
        monkeypatch.setenv(LOG_LEVEL_ENV, "verbose")
        assert env_level() == "info"
