"""Span tracing: recording, child-span absorption, Chrome export, and
end-to-end stage-span coverage through ``run_graph``."""

import json
import pickle

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    TracedRunner,
    Tracer,
    chrome_trace,
    load_trace,
    summarize,
)


class TestTracer:
    def test_add_span_records_and_sorts(self):
        tracer = Tracer()
        tracer.add_span("b", "stage", 2.0, 0.5)
        tracer.add_span("a", "stage", 1.0, 0.25, {"outcome": "hit"})
        spans = tracer.spans()
        assert [s["name"] for s in spans] == ["a", "b"]
        assert spans[0]["args"] == {"outcome": "hit"}
        assert spans[0]["pid"] == tracer.pid

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.add_span("x", "c", 0.0, -1.0)
        assert tracer.spans()[0]["dur"] == 0.0

    def test_span_context_manager_times_block(self):
        tracer = Tracer()
        with tracer.span("work", cat="test", stage="compile"):
            pass
        (span,) = tracer.spans()
        assert span["name"] == "work"
        assert span["cat"] == "test"
        assert span["args"] == {"stage": "compile"}
        assert span["dur"] >= 0.0

    def test_span_context_manager_records_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom", cat="test"):
                raise ValueError("nope")
        (span,) = tracer.spans()
        assert span["args"]["error"] == "ValueError"

    def test_absorb_remaps_child_epoch(self):
        parent = Tracer()
        child_spans = [{"name": "n", "cat": "c", "ts": 0.5, "dur": 0.1,
                        "pid": 999, "tid": 1}]
        # Child epoch 2 wall-seconds after the parent's.
        parent.absorb(child_spans, epoch_wall=parent.epoch_wall + 2.0)
        (span,) = parent.spans()
        assert span["ts"] == pytest.approx(2.5)
        assert span["pid"] == 999

    def test_absorb_none_is_noop(self):
        tracer = Tracer()
        tracer.absorb(None)
        tracer.absorb([])
        assert tracer.spans() == []

    def test_save_load_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.add_span("x", "stage", 0.0, 1.0)
        registry = MetricsRegistry()
        registry.count("c")
        path = tracer.save(tmp_path / "t.json",
                           metrics=registry.snapshot())
        data = load_trace(path)
        assert data["format"] == "repro-trace"
        assert len(data["spans"]) == 1
        assert data["metrics"]["metrics"][0]["name"] == "c"

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not-a-trace.json"
        path.write_text(json.dumps({"spans": []}))
        with pytest.raises(ValueError, match="not a repro-trace"):
            load_trace(path)


class TestExports:
    def test_chrome_trace_microseconds(self):
        tracer = Tracer()
        tracer.add_span("node", "run", 0.001, 0.002, {"outcome": "hit"})
        chrome = chrome_trace(tracer.to_dict())
        (event,) = chrome["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(1000.0)
        assert event["dur"] == pytest.approx(2000.0)
        assert event["args"] == {"outcome": "hit"}

    def test_summarize_aggregates_by_category(self):
        tracer = Tracer()
        tracer.add_span("a", "run", 0.0, 1.0)
        tracer.add_span("b", "run", 1.0, 3.0)
        tracer.add_span("c", "compile", 0.0, 2.0)
        rows = {r["cat"]: r for r in summarize(tracer.to_dict())}
        assert rows["run"]["count"] == 2
        assert rows["run"]["total_seconds"] == pytest.approx(4.0)
        assert rows["run"]["max_seconds"] == pytest.approx(3.0)
        assert rows["compile"]["mean_seconds"] == pytest.approx(2.0)


class TestTracedRunner:
    def test_records_exec_span_around_runner(self):
        tracer = Tracer()

        class Task:
            id = "t1"
            stage = "run"

        runner = TracedRunner(tracer, lambda task, deps: "result")
        assert runner(Task(), {}) == "result"
        (span,) = tracer.spans()
        assert span["name"] == "t1"
        assert span["cat"] == "exec"
        assert span["args"] == {"stage": "run"}

    def test_pickling_degrades_to_wrapped_runner(self):
        # Mirrors CoalescingRunner: the tracer holds a lock, so the
        # wrapper must strip itself when shipped to a worker process.
        tracer = Tracer()
        runner = TracedRunner(tracer, _plain_runner)
        restored = pickle.loads(pickle.dumps(runner))
        assert restored is not runner
        assert restored is _plain_runner


def _plain_runner(task, deps):
    return task


# Module-level so worker processes can unpickle them by reference.
def graph_runner(task, deps):
    return task.payload.get("value", 0) + sum(deps.values())


def graph_keyer(task):
    return {"value": task.payload.get("value", 0),
            "deps": sorted(task.deps)}


def _diamond():
    from repro.engine.tasks import Task

    tasks = (
        Task(id="top", stage="compile", payload={"value": 1}),
        Task(id="left", stage="run", payload={"value": 10}, deps=("top",)),
        Task(id="right", stage="run", payload={"value": 100},
             deps=("top",)),
        Task(id="bottom", stage="profile", payload={"value": 1000},
             deps=("left", "right")),
    )
    return {task.id: task for task in tasks}


class TestGraphCoverage:
    """Acceptance: stage spans cover every graph node, per backend."""

    @pytest.mark.parametrize("backend", ["inline", "thread", "shard"])
    def test_spans_cover_all_nodes(self, backend, tmp_path):
        from repro.engine.scheduler import run_graph
        from repro.engine.store import ArtifactStore

        graph = _diamond()
        tracer = Tracer()
        store = ArtifactStore(root=tmp_path / backend)
        run_graph(graph, workers=2, store=store, runner=graph_runner,
                  keyer=graph_keyer, backend=backend, tracer=tracer)
        spans = tracer.spans()
        node_spans = {s["name"] for s in spans if s["cat"] != "scheduler"}
        assert set(graph) <= node_spans
        assert any(s["name"] == "run_graph" and s["cat"] == "scheduler"
                   for s in spans)

    def test_warm_run_emits_hit_spans(self, tmp_path):
        from repro.engine.scheduler import run_graph
        from repro.engine.store import ArtifactStore

        graph = _diamond()
        store = ArtifactStore(root=tmp_path)
        run_graph(graph, workers=2, store=store, runner=graph_runner,
                  keyer=graph_keyer, backend="inline")
        tracer = Tracer()
        run_graph(graph, workers=2, store=store, runner=graph_runner,
                  keyer=graph_keyer, backend="inline", tracer=tracer)
        outcomes = {s["name"]: s.get("args", {}).get("outcome")
                    for s in tracer.spans() if s["cat"] != "scheduler"}
        assert all(outcomes[node] == "hit" for node in graph)
