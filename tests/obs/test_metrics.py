"""The metrics registry: deterministic snapshots, commutative merge,
Prometheus rendering, and the histogram-dict helpers the sweep scores
with."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    ExpHistogram,
    LatencyMeasurer,
    MetricsRegistry,
    TaggedCounter,
    bucket_index,
    hist_distance,
    merge_hist_data,
)


class TestBucketIndex:
    def test_powers_of_two_boundaries(self):
        # Bucket k covers [2**(k-1), 2**k).
        assert bucket_index(1.0) == 1
        assert bucket_index(1.999) == 1
        assert bucket_index(2.0) == 2
        assert bucket_index(4.0) == 3

    def test_non_positive_values_land_in_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(-3.0) == 0

    def test_sub_unit_floats_use_negative_exponents(self):
        # 1.5 ms: 2**-10 <= v < 2**-9.
        assert bucket_index(0.0015) == -9
        k = bucket_index(0.75)
        assert 2.0 ** (k - 1) <= 0.75 < 2.0 ** k


class TestMetricKinds:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.snapshot_data() == {"value": 5}
        c.merge_data({"value": 3})
        assert c.value == 8

    def test_tagged_counter(self):
        t = TaggedCounter(label="stage")
        t.inc("compile")
        t.inc("run", 2)
        data = t.snapshot_data()
        assert data == {"label": "stage",
                        "values": {"compile": 1, "run": 2}}
        t.merge_data({"values": {"run": 1, "profile": 5}})
        assert t.values == {"compile": 1, "run": 3, "profile": 5}

    def test_exp_histogram_tracks_count_sum_min_max(self):
        h = ExpHistogram()
        for v in (0.5, 1.5, 3.0, 3.5):
            h.add(v)
        data = h.snapshot_data()
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(8.5)
        assert data["min"] == 0.5
        assert data["max"] == 3.5
        assert data["buckets"] == {0: 1, 1: 1, 2: 2}
        assert h.mean == pytest.approx(8.5 / 4)

    def test_exp_histogram_bucket_keys_are_ints(self):
        # Int keys pickle by value — the byte-identical-artifact
        # invariant depends on this.
        h = ExpHistogram()
        h.add(3.0)
        assert all(isinstance(k, int)
                   for k in h.snapshot_data()["buckets"])

    def test_exp_histogram_merge_accepts_json_round_trip(self):
        h = ExpHistogram()
        h.add(1.0)
        other = ExpHistogram()
        other.add(8.0)
        # JSON coerces int keys to strings; merge must normalize.
        h.merge_data(json.loads(json.dumps(other.snapshot_data())))
        assert h.count == 2
        assert h.buckets == {1: 1, 4: 1}
        assert h.max == 8.0

    def test_empty_histogram_merge(self):
        h = ExpHistogram()
        h.merge_data(ExpHistogram().snapshot_data())
        assert h.count == 0
        assert h.min is None and h.max is None

    def test_latency_measurer_context_manager(self):
        m = LatencyMeasurer()
        with m:
            math.sqrt(2.0)
        m.observe(0.25)
        assert m.hist.count == 2
        assert m.snapshot_data()["count"] == 2


class TestRegistry:
    def test_count_and_observe_accessors(self):
        reg = MetricsRegistry()
        reg.count("jobs")
        reg.count("jobs", 2)
        reg.count("stages", tag="compile", label="stage")
        reg.observe("depth", 3.0)
        reg.observe_latency("lat", 0.01)
        assert reg.counter("jobs").value == 3
        assert reg.tagged("stages", label="stage").values == {"compile": 1}
        assert reg.histogram("depth").count == 1
        assert reg.latency("lat").hist.count == 1

    def test_snapshot_is_deterministic_and_sorted(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.count(name)
            return reg.snapshot()

        a = build(["z", "a", "m"])
        b = build(["m", "z", "a"])
        assert a == b
        assert [e["name"] for e in a["metrics"]] == ["a", "m", "z"]
        assert a["format"] == "repro-metrics"

    def test_volatile_metrics_dropped_on_request(self):
        reg = MetricsRegistry()
        reg.count("stable")
        reg.observe("depth", 1.0, volatile=True)
        reg.observe_latency("lat", 0.5)  # latency: always volatile
        full = reg.snapshot()
        stable = reg.snapshot(include_volatile=False)
        assert {e["name"] for e in full["metrics"]} == \
            {"stable", "depth", "lat"}
        assert [e["name"] for e in stable["metrics"]] == ["stable"]

    def test_merge_is_commutative(self):
        def build(pairs):
            reg = MetricsRegistry()
            for name, n in pairs:
                reg.count(name, n, tag="x", label="k")
                reg.observe("h", float(n))
            return reg

        a1, b1 = build([("c", 1)]), build([("c", 2), ("d", 5)])
        a2, b2 = build([("c", 1)]), build([("c", 2), ("d", 5)])
        a1.merge(b1)
        b2.merge(a2)
        assert a1.snapshot() == b2.snapshot()

    def test_merge_accepts_snapshot_dict(self):
        a = MetricsRegistry()
        a.count("c", 2)
        b = MetricsRegistry()
        b.merge(json.loads(json.dumps(a.snapshot())))
        b.merge(a)
        assert b.counter("c").value == 4

    def test_merge_preserves_tagged_label(self):
        a = MetricsRegistry()
        a.count("stages", tag="compile", label="stage")
        b = MetricsRegistry()
        b.merge(a)
        assert b.tagged("stages", label="stage").label == "stage"

    def test_tags_distinguish_series(self):
        reg = MetricsRegistry()
        reg.count("ops", tags={"stage": "a"})
        reg.count("ops", tags={"stage": "b"}, n=2)
        entries = reg.snapshot()["metrics"]
        assert [(e["tags"], e["data"]["value"]) for e in entries] == \
            [({"stage": "a"}, 1), ({"stage": "b"}, 2)]


class TestPrometheus:
    def test_counter_and_tagged_lines(self):
        reg = MetricsRegistry()
        reg.count("serve_quota_rejections", 3)
        reg.count("engine_stages_executed", tag="compile", label="stage")
        text = reg.render_prometheus()
        assert "# TYPE serve_quota_rejections counter" in text
        assert "serve_quota_rejections 3" in text
        assert 'engine_stages_executed{stage="compile"} 1' in text

    def test_histogram_renders_cumulative_buckets(self):
        reg = MetricsRegistry()
        for v in (1.5, 3.0, 3.5):
            reg.observe("lat", v)
        text = reg.render_prometheus()
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="2.0"} 1' in text
        assert 'lat_bucket{le="4.0"} 3' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.count("c", tag='with"quote', label="k")
        assert 'k="with\\"quote"' in reg.render_prometheus()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestHistHelpers:
    def test_merge_hist_data_none_handling(self):
        h = ExpHistogram()
        h.add(1.0)
        data = h.snapshot_data()
        assert merge_hist_data(None, None) is None
        assert merge_hist_data(data, None) == data
        assert merge_hist_data(None, data) == data
        merged = merge_hist_data(data, data)
        assert merged["count"] == 2
        assert merged["buckets"] == {1: 2}

    def test_hist_distance_identical_is_zero(self):
        h = ExpHistogram()
        for v in (1.0, 2.0, 4.0):
            h.add(v)
        assert hist_distance(h.snapshot_data(), h.snapshot_data()) == 0.0

    def test_hist_distance_disjoint_is_one(self):
        a, b = ExpHistogram(), ExpHistogram()
        a.add(1.0)
        b.add(64.0)
        assert hist_distance(a.snapshot_data(), b.snapshot_data()) == 1.0

    def test_hist_distance_missing_or_empty_is_none(self):
        h = ExpHistogram()
        h.add(1.0)
        data = h.snapshot_data()
        assert hist_distance(None, data) is None
        assert hist_distance(data, ExpHistogram().snapshot_data()) is None

    def test_hist_distance_normalizes_str_keys(self):
        h = ExpHistogram()
        h.add(2.0)
        via_json = json.loads(json.dumps(h.snapshot_data()))
        assert hist_distance(h.snapshot_data(), via_json) == 0.0
