"""The ``repro-trace`` CLI: summary, export, record delegation."""

import json

import pytest

from repro.obs.__main__ import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


@pytest.fixture
def trace_file(tmp_path):
    tracer = Tracer()
    tracer.add_span("t1", "compile", 0.0, 0.5, {"outcome": "executed"})
    tracer.add_span("t2", "run", 0.5, 0.25, {"outcome": "hit"})
    registry = MetricsRegistry()
    registry.count("engine_cache", tag="hit", label="outcome")
    registry.count("jobs", 2)
    return tracer.save(tmp_path / "trace.json",
                       metrics=registry.snapshot())


class TestSummary:
    def test_rollup_and_metrics(self, trace_file, capsys):
        assert main(["summary", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "compile" in out and "run" in out
        assert "2 metric(s) in embedded snapshot" in out
        assert "engine_cache [tagged_counter] = {'hit': 1}" in out
        assert "jobs [counter] = 2" in out

    def test_empty_trace(self, tmp_path, capsys):
        path = Tracer().save(tmp_path / "empty.json")
        assert main(["summary", str(path)]) == 0
        assert "no spans recorded" in capsys.readouterr().out


class TestExport:
    def test_chrome_json_parses(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "chrome.json"
        assert main(["export", str(trace_file),
                     "--out", str(out_path)]) == 0
        chrome = json.loads(out_path.read_text())
        assert len(chrome["traceEvents"]) == 2
        assert {e["name"] for e in chrome["traceEvents"]} == {"t1", "t2"}
        assert "wrote 2 events" in capsys.readouterr().out


class TestRecord:
    def test_figure_records_stage_spans(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out = tmp_path / "trace.json"
        assert main(["record", "--figure", "fig04", "--out", str(out),
                     "--workers", "2"]) == 0
        trace = json.loads(out.read_text())
        cats = {s["cat"] for s in trace["spans"]}
        assert {"compile", "run", "profile"} <= cats
        assert "scheduler" in cats
        assert trace["metrics"]["metrics"], "metrics snapshot embedded"
