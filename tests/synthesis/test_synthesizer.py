"""End-to-end synthesis tests: the paper's core claims in miniature."""

import pytest

from repro.cc.driver import compile_program
from repro.profiling.profile import profile_workload
from repro.sim.branch import HybridPredictor, simulate_predictor
from repro.sim.cache import CacheConfig, simulate_cache
from repro.sim.functional import run_binary
from repro.synthesis.baseline import synthesize_linear
from repro.synthesis.synthesizer import synthesize, synthesize_consolidated

WORKLOAD = """
int data[2048];
int lut[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};

int churn(int rounds) {
  int acc = 1;
  int r;
  for (r = 0; r < rounds; r++) {
    int i;
    for (i = 0; i < 2048; i = i + 4) {
      acc = acc + data[i] * lut[acc & 15];
      if ((acc & 3) == 0) { acc = acc ^ 0x5f5f; }
      data[i] = acc & 4095;
    }
  }
  return acc;
}

int main() {
  printf("%d", churn(12));
  return 0;
}
"""


@pytest.fixture(scope="module")
def profile():
    result, _trace = profile_workload(WORKLOAD)
    return result


@pytest.fixture(scope="module")
def clone(profile):
    return synthesize(profile, target_instructions=8000)


@pytest.fixture(scope="module")
def clone_trace(clone):
    binary = compile_program(clone.source, "x86", 0).binary
    return run_binary(binary)


class TestGeneratedBenchmark:
    def test_clone_compiles_on_every_isa_and_level(self, clone):
        for isa in ("x86", "x86_64", "ia64"):
            for level in (0, 1, 2, 3):
                binary = compile_program(clone.source, isa, level).binary
                trace = run_binary(binary)
                assert trace.instructions > 500

    def test_target_size_hit(self, clone, clone_trace):
        assert 0.4 * 8000 < clone_trace.instructions < 3.0 * 8000

    def test_reduction_factor_sensible(self, profile, clone):
        expected = round(profile.total_instructions / 8000)
        assert clone.reduction_factor == max(1, expected)

    def test_shorter_than_original(self, profile, clone_trace):
        assert clone_trace.instructions * 5 < profile.total_instructions

    def test_instruction_mix_tracks_original(self, profile, clone_trace):
        original = profile.mix.paper_mix()
        synthetic = clone_trace.instruction_mix().paper_mix()
        for key in ("loads", "stores", "branches"):
            assert abs(original[key] - synthetic[key]) < 0.12, (
                key, original, synthetic,
            )

    def test_branch_behaviour_tracks(self, profile, clone_trace):
        from repro.experiments.runner import ExperimentRunner  # noqa: F401

        original_acc = simulate_predictor(
            [  # replay the original's log needs the original trace
            ],
        )
        # Compare via fresh predictor accuracies on each side instead.
        clone_acc = simulate_predictor(
            clone_trace.branch_log, HybridPredictor()
        ).accuracy
        assert 0.7 < clone_acc <= 1.0

    def test_cache_hit_rate_tracks(self, profile, clone_trace):
        config = CacheConfig(8 * 1024, 32, 4)
        synthetic_rate = simulate_cache(clone_trace.mem_addrs, config).hit_rate
        original_rate = profile.memory.hit_rates_by_size[8 * 1024]
        assert abs(synthetic_rate - original_rate) < 0.10

    def test_contains_loops_and_sink(self, clone):
        assert "for (" in clone.source
        assert "mSink" in clone.source
        assert "printf" in clone.source

    def test_deterministic(self, profile):
        first = synthesize(profile, target_instructions=8000)
        second = synthesize(profile, target_instructions=8000)
        assert first.source == second.source

    def test_different_seed_changes_constants(self, profile):
        first = synthesize(profile, target_instructions=8000, seed=1)
        second = synthesize(profile, target_instructions=8000, seed=2)
        assert first.source != second.source


class TestBaseline:
    def test_linear_clone_runs(self, profile):
        clone = synthesize_linear(profile, target_instructions=8000)
        binary = compile_program(clone.source, "x86", 0).binary
        trace = run_binary(binary)
        assert trace.instructions > 1000

    def test_linear_clone_has_single_loop_structure(self, profile):
        clone = synthesize_linear(profile, target_instructions=8000)
        # One top loop + the sink loop: far fewer `for`s than SFGL clones.
        assert clone.source.count("for (") <= 3


class TestConsolidation:
    def test_consolidated_combines_workloads(self, profile):
        merged = synthesize_consolidated([profile, profile], 12000)
        binary = compile_program(merged.source, "x86", 0).binary
        trace = run_binary(binary)
        assert trace.instructions > 2000
        assert "w0_" in merged.source
        assert "w1_" in merged.source

    def test_consolidated_runs_at_o2(self, profile):
        merged = synthesize_consolidated([profile, profile], 12000)
        binary = compile_program(merged.source, "x86_64", 2).binary
        trace = run_binary(binary)
        assert trace.instructions > 1000

    def test_consolidation_requires_profiles(self):
        with pytest.raises(ValueError):
            synthesize_consolidated([], 1000)
