"""Table II pattern generation and cost-model tests."""

from collections import Counter

import pytest

from repro.profiling.profile import profile_workload
from repro.synthesis.memory import StreamPool
from repro.synthesis.patterns import (
    BlockTranslator,
    STATEMENT_COSTS,
    category_counts,
    split_budgets,
)
from tests.conftest import run_source


def costs_of_statements(statements: list[str]) -> Counter:
    """Ground truth: compile the statements at -O0 and count classes."""
    decls = ["unsigned mSink[64];"]
    body = []
    # Provide every identifier the statements reference.
    import re

    text = "\n".join(statements)
    for name in sorted(set(re.findall(r"\bgS\d+\b", text))):
        decls.append(f"int {name} = 5;")
    for name in sorted(set(re.findall(r"\bgF\d+\b", text))):
        decls.append(f"float {name} = 1.5;")
    for name in sorted(set(re.findall(r"\bgw\d+\b", text))):
        decls.append(f"unsigned {name} = 0u;")
    for name in sorted(set(re.findall(r"\b[mf]S_c\d+_w\d+k\b", text))):
        ctype = "float" if name.startswith("f") else "unsigned"
        decls.append(f"{ctype} {name}[4096];")
    source = "\n".join(decls) + "\nint main() {\n" + text + "\nreturn 0;\n}\n"
    trace = run_source(source, opt_level=0)
    mix = trace.instruction_mix().by_klass
    return Counter(
        {
            "load": mix.get("load", 0),
            "store": mix.get("store", 0),
            "ialu": mix.get("ialu", 0),
            "imul": mix.get("imul", 0),
            "idiv": mix.get("idiv", 0),
            "falu": mix.get("falu", 0),
            "fmul": mix.get("fmul", 0),
            "fdiv": mix.get("fdiv", 0),
            "fmath": mix.get("fmath", 0),
        }
    )


@pytest.fixture(scope="module")
def profiled_block():
    source = """
    int data[512];
    int main() {
      int total = 0;
      int i;
      for (i = 0; i < 400; i++) {
        total = total + data[i & 511] * 3;
        data[(i * 5) & 511] = total & 1023;
      }
      printf("%d", total);
      return 0;
    }
    """
    profile, _ = profile_workload(source)
    hot = max(profile.sfgl.blocks.values(), key=lambda b: b.count * b.size)
    return profile, hot


class TestCostModel:
    """STATEMENT_COSTS must match what the real compiler emits at -O0."""

    def test_store_const(self):
        assert costs_of_statements(["gS0 = 42;"]) == STATEMENT_COSTS["store-const"]

    def test_load_store(self):
        assert costs_of_statements(["gS0 = gS1;"]) == STATEMENT_COSTS["load-store"]

    def test_load_arith_store(self):
        assert (
            costs_of_statements(["gS0 = gS1 + 3;"])
            == STATEMENT_COSTS["load-arith-store"]
        )

    def test_load_load_arith_store(self):
        assert (
            costs_of_statements(["gS0 = gS1 ^ gS2;"])
            == STATEMENT_COSTS["load-load-arith-store"]
        )

    def test_load3_arith_store(self):
        assert (
            costs_of_statements(["gS0 = gS1 + gS2 + gS3;"])
            == STATEMENT_COSTS["load3-arith-store"]
        )

    def test_walker_advance(self):
        assert (
            costs_of_statements(["gw0 = (gw0 + 4u) & 4095u;"])
            == STATEMENT_COSTS["walker-advance"]
        )


class TestTranslation:
    def test_emitted_matches_budget(self, profiled_block):
        profile, hot = profiled_block
        translator = BlockTranslator(StreamPool(), profile.memory)
        statements, emitted = translator.translate(hot)
        target = category_counts(hot.instrs)
        # Within a few instructions per category (compensation rounds up).
        for key in ("load", "store", "ialu"):
            assert abs(emitted[key] - target[key]) <= 4, (key, emitted, target)

    def test_emitted_cost_matches_real_compile(self, profiled_block):
        """The translator's self-reported cost equals the actual -O0 cost."""
        profile, hot = profiled_block
        translator = BlockTranslator(StreamPool(), profile.memory)
        statements, emitted = translator.translate(hot)
        actual = costs_of_statements(statements)
        assert actual == emitted

    def test_statements_use_table_ii_shapes(self, profiled_block):
        profile, hot = profiled_block
        translator = BlockTranslator(StreamPool(), profile.memory)
        statements, _ = translator.translate(hot)
        for statement in statements:
            assert statement.endswith(";")
            assert "=" in statement

    def test_coverage_tracked(self, profiled_block):
        profile, hot = profiled_block
        translator = BlockTranslator(StreamPool(), profile.memory)
        translator.translate(hot)
        assert translator.stats.coverage() > 0.8

    def test_split_budgets_partitions(self, profiled_block):
        _, hot = profiled_block
        int_budget, float_budget = split_budgets(hot.instrs)
        combined = Counter(int_budget)
        combined.update(float_budget)
        assert combined == category_counts(hot.instrs)

    def test_divisions_never_use_loaded_divisor(self, profiled_block):
        """Divide-by-loaded-stream-word would trap on zero-initialized
        arrays; the generator must always use constant divisors."""
        profile, hot = profiled_block
        translator = BlockTranslator(StreamPool(), profile.memory)
        statements, _ = translator.translate(hot)
        import re

        for statement in statements:
            for match in re.finditer(r"/\s*([A-Za-z0-9_.\[\]]+)", statement):
                divisor = match.group(1)
                assert divisor[0].isdigit(), statement
