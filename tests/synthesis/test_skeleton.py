"""Skeleton-structure tests: does the generated C mirror the profiled
control structure the way §III-B.2/3 describes?"""

import re

import pytest

from repro.profiling.profile import profile_workload
from repro.synthesis.synthesizer import synthesize


def clone_of(source: str, target: int = 10_000):
    profile, _ = profile_workload(source)
    return synthesize(profile, target_instructions=target), profile


class TestLoopStructure:
    def test_nested_loops_regenerate_nested_fors(self):
        source = """
        int a[256];
        int main() {
          int i; int j; int total = 0;
          for (i = 0; i < 60; i++) {
            for (j = 0; j < 100; j++) {
              total = total + a[j & 255];
            }
          }
          printf("%d", total);
          return 0;
        }
        """
        clone, _ = clone_of(source)
        # Find a `for` whose body contains another `for` (ignoring the
        # never-executed sink loop, which lives inside an `if`).
        text = clone.source
        body = text[text.index("void sf0") :] if "void sf0" in text else text
        depth = 0
        max_depth = 0
        for line in body.splitlines():
            if re.search(r"\bfor \(int li", line):
                depth += 1
                max_depth = max(max_depth, depth)
            if line.strip() == "}":
                depth = max(0, depth - 1)
        assert max_depth >= 2, clone.source

    def test_trip_counts_scale_with_reduction(self):
        source = """
        int main() {
          int total = 0;
          int i;
          for (i = 0; i < 40000; i++) {
            total = total + (i & 63);
          }
          printf("%d", total);
          return 0;
        }
        """
        clone, profile = clone_of(source, target=5_000)
        trips = [int(m) for m in re.findall(r"< (\d+); li", clone.source)]
        assert trips, clone.source
        # One hot loop: trip roughly 40000 / R.
        expected = 40000 // clone.reduction_factor
        assert any(abs(t - expected) < expected * 0.5 for t in trips), (
            trips, expected,
        )

    def test_calls_regenerated(self):
        source = """
        int work(int x) {
          int i; int acc = x;
          for (i = 0; i < 50; i++) { acc = acc + i * x; }
          return acc;
        }
        int main() {
          int r = 0; int k;
          for (k = 0; k < 40; k++) { r = r + work(k); }
          printf("%d", r);
          return 0;
        }
        """
        clone, _ = clone_of(source, target=20_000)
        # work survives scaling as a synthetic function called from main
        # (either at call sites or via the orphan loop).
        assert re.search(r"void sf\d+\(\)", clone.source)
        assert re.search(r"sf\d+\(\);", clone.source)


class TestBranchStructure:
    def test_cold_path_becomes_sink(self):
        source = """
        int main() {
          int total = 0;
          int i;
          for (i = 0; i < 20000; i++) {
            total = total + i;
            if (total < 0) { total = 0; }
          }
          printf("%d", total);
          return 0;
        }
        """
        clone, _ = clone_of(source, target=5_000)
        assert "mSink[0] == 153u" in clone.source
        assert 'printf("%u;", mSink[sj]);' in clone.source

    def test_hard_branch_uses_iterator_mask(self):
        source = """
        int main() {
          int total = 0;
          int i;
          for (i = 0; i < 20000; i++) {
            if (((i * 1103515245) >> 16) & 1) {
              total = total + 3;
            } else {
              total = total ^ 7;
            }
          }
          printf("%d", total);
          return 0;
        }
        """
        clone, _ = clone_of(source, target=5_000)
        assert re.search(r"li\d+ >> 2\) \^ li\d+\) & \d+u\) < \d+u", clone.source), (
            clone.source
        )

    def test_clone_runs_without_trapping(self):
        from repro.cc.driver import compile_program
        from repro.sim.functional import run_binary

        source = """
        int main() {
          int total = 0;
          int i;
          for (i = 0; i < 30000; i++) {
            if ((i & 7) < 3) { total = total + i; } else { total = total - 1; }
          }
          printf("%d", total);
          return 0;
        }
        """
        clone, _ = clone_of(source, target=6_000)
        for level in (0, 1, 2, 3):
            trace = run_binary(compile_program(clone.source, "x86_64", level).binary)
            assert trace.instructions > 500


class TestFunctionAssignment:
    def test_functions_renamed(self):
        source = """
        int secret_scoring_kernel(int x) {
          int i; int acc = 0;
          for (i = 0; i < 100; i++) { acc = acc + x * i; }
          return acc;
        }
        int main() {
          int r = 0; int k;
          for (k = 0; k < 30; k++) { r = r + secret_scoring_kernel(k); }
          printf("%d", r);
          return 0;
        }
        """
        clone, _ = clone_of(source, target=10_000)
        assert "secret_scoring_kernel" not in clone.source

    def test_recursion_flattened_to_repeat(self):
        source = """
        int walk(int n) {
          int i; int acc = 0;
          for (i = 0; i < 30; i++) { acc = acc + i; }
          if (n > 0) { return acc + walk(n - 1); }
          return acc;
        }
        int main() {
          printf("%d", walk(400));
          return 0;
        }
        """
        clone, _ = clone_of(source, target=8_000)
        # No self-recursion in the clone: the body repeats via `rr` loop
        # or scaled trip counts instead.
        body = clone.source[clone.source.index("void sf0") :]
        body = body[: body.index("int main")]
        assert not re.search(r"\bsf0\(\);", body)
