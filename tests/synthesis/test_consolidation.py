"""Consolidation namespace and behaviour tests (§II-B.e)."""

import re

import pytest

from repro.cc.driver import compile_program
from repro.profiling.profile import profile_workload
from repro.sim.functional import run_binary
from repro.synthesis.synthesizer import synthesize, synthesize_consolidated

KERNEL_A = """
int a[512];
int main() {
  int t = 0; int i; int r;
  for (r = 0; r < 40; r++) {
    for (i = 0; i < 512; i++) { t = t + a[i]; }
  }
  printf("%d", t);
  return 0;
}
"""

KERNEL_B = """
int main() {
  float x = 1.0; float acc = 0.0; int i;
  for (i = 0; i < 6000; i++) {
    acc = acc + sin(x) * 0.5;
    x = x + 0.001;
  }
  printf("%.2f", acc);
  return 0;
}
"""


@pytest.fixture(scope="module")
def profiles():
    pa, _ = profile_workload(KERNEL_A)
    pb, _ = profile_workload(KERNEL_B)
    return [pa, pb]


class TestNamespaceFusion:
    def test_single_main(self, profiles):
        merged = synthesize_consolidated(profiles, 16_000)
        assert merged.source.count("int main()") == 1

    def test_workload_prefixes_disjoint(self, profiles):
        merged = synthesize_consolidated(profiles, 16_000)
        # Every synthetic identifier is prefixed; no bare collisions left.
        bare = re.findall(r"(?<![\w])(?:gS\d+|gF\d+|gw\d+|mSink|sf\d+)\b",
                          merged.source)
        assert not bare, bare[:5]

    def test_each_piece_invoked(self, profiles):
        merged = synthesize_consolidated(profiles, 16_000)
        assert "w0_main();" in merged.source
        assert "w1_main();" in merged.source

    def test_metadata_aggregated(self, profiles):
        merged = synthesize_consolidated(profiles, 16_000)
        assert merged.original_instructions == sum(
            p.total_instructions for p in profiles
        )
        assert merged.estimated_instructions > 0


class TestConsolidatedBehaviour:
    def test_runs_on_every_isa_level(self, profiles):
        merged = synthesize_consolidated(profiles, 16_000)
        for isa in ("x86", "x86_64", "ia64"):
            for level in (0, 2):
                trace = run_binary(compile_program(merged.source, isa, level).binary)
                assert trace.instructions > 1000

    def test_blends_float_and_int_behaviour(self, profiles):
        """A consolidated clone inherits float work from B, loops from A."""
        merged = synthesize_consolidated(profiles, 16_000)
        trace = run_binary(compile_program(merged.source, "x86", 0).binary)
        mix = trace.instruction_mix().by_klass
        float_ops = (
            mix.get("falu", 0) + mix.get("fmul", 0) + mix.get("fmath", 0)
        )
        assert float_ops > 0  # from kernel B
        assert mix.get("load", 0) > 0.15 * trace.instructions  # from A

    def test_size_share_split(self, profiles):
        merged_small = synthesize_consolidated(profiles, 8_000)
        merged_large = synthesize_consolidated(profiles, 40_000)
        small = run_binary(
            compile_program(merged_small.source, "x86", 0).binary
        ).instructions
        large = run_binary(
            compile_program(merged_large.source, "x86", 0).binary
        ).instructions
        assert large > 2 * small

    def test_individual_clone_sources_embedded_obfuscated(self, profiles):
        """Consolidation preserves each piece's obfuscation."""
        from repro.obfuscation.report import compare_sources

        merged = synthesize_consolidated(profiles, 16_000)
        report = compare_sources(KERNEL_A, merged.source)
        assert not report.flagged
