"""Stream pool tests: Table I strides materialized as C arrays."""

from repro.profiling.memory_profile import MISS_CLASS_STRIDES
from repro.synthesis.memory import FLOAT_POOL, SCALAR_POOL, StreamKey, StreamPool
from tests.conftest import run_source


class TestStreamKey:
    def test_stride_words_from_table_i(self):
        for klass in range(1, 9):
            key = StreamKey(klass, 8 * 1024, "i")
            assert key.stride_words == MISS_CLASS_STRIDES[klass] // 4

    def test_array_twice_working_set(self):
        key = StreamKey(4, 8 * 1024, "i")
        assert key.array_words == 2 * 8 * 1024 // 4

    def test_array_words_power_of_two(self):
        for ws_kb in (1, 2, 4, 8, 16, 32, 64):
            key = StreamKey(2, ws_kb * 1024, "i")
            words = key.array_words
            assert words & (words - 1) == 0

    def test_float_and_int_arrays_distinct(self):
        int_key = StreamKey(3, 4096, "i")
        float_key = StreamKey(3, 4096, "f")
        assert int_key.array_name != float_key.array_name


class TestStreamPool:
    def test_scalar_round_robin(self):
        pool = StreamPool()
        names = [pool.scalar("i") for _ in range(SCALAR_POOL + 2)]
        assert names[0] == names[SCALAR_POOL]
        assert len(set(names)) == SCALAR_POOL

    def test_float_pool_separate(self):
        pool = StreamPool()
        assert pool.scalar("f").startswith("gF")
        assert len({pool.scalar("f") for _ in range(FLOAT_POOL * 2)}) == FLOAT_POOL

    def test_walker_per_block_stream(self):
        pool = StreamPool()
        key = pool.stream(4, 8192, "i")
        w1 = pool.walker(1, key)
        w2 = pool.walker(2, key)
        assert w1 != w2
        assert pool.walker(1, key) == w1  # stable

    def test_declarations_cover_all(self):
        pool = StreamPool()
        key = pool.stream(2, 4096, "i")
        pool.walker(7, key)
        decls = "\n".join(pool.declarations())
        assert key.array_name in decls
        assert "gw0" in decls
        assert "gS0" in decls

    def test_advance_statement_masks(self):
        pool = StreamPool()
        key = pool.stream(4, 8192, "i")
        statement = pool.advance_statement("gw0", key)
        assert f"& {key.array_words - 1}u" in statement
        assert f"+ {key.stride_words}u" in statement


class TestGeneratedStrideBehaviour:
    """A generated stride walk really produces the Table I miss rate."""

    def _miss_rate_for_class(self, klass: int) -> float:
        from repro.sim.cache import CacheConfig, simulate_cache

        key = StreamKey(klass, 8 * 1024, "i")
        pool = StreamPool()
        pool.streams[key] = key
        mask = key.array_words - 1
        source = f"""
        unsigned {key.array_name}[{key.array_words}];
        unsigned gw0 = 0u;
        int main() {{
          unsigned total = 0u;
          int i;
          for (i = 0; i < 20000; i++) {{
            gw0 = (gw0 + {key.stride_words}u) & {mask}u;
            total = total + {key.array_name}[gw0];
          }}
          printf("%u", total);
          return 0;
        }}
        """
        trace = run_source(source)
        # Only the stream accesses matter: filter to the array's region.
        cache = simulate_cache(trace.mem_addrs, CacheConfig(8 * 1024, 32, 4))
        return cache.miss_rate

    def test_class_8_misses_nearly_always(self):
        # Loop overhead (i, gw0, total) hits, so the aggregate rate is
        # diluted; the stream itself misses ~100% of the time.
        assert self._miss_rate_for_class(8) > 0.10

    def test_class_ordering(self):
        assert (
            self._miss_rate_for_class(2)
            < self._miss_rate_for_class(4)
            < self._miss_rate_for_class(8)
        )
