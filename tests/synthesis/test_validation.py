"""Fidelity validation tests (the paper's §III-D future-work extension)."""

import pytest

from repro.profiling.profile import profile_workload
from repro.synthesis.synthesizer import synthesize
from repro.synthesis.validation import (
    FidelityReport,
    synthesize_validated,
    validate_clone,
)

WORKLOAD = """
int buf[1024];
int main() {
  int total = 0;
  int i;
  int r;
  for (r = 0; r < 60; r++) {
    for (i = 0; i < 1024; i = i + 2) {
      total = total + buf[i] * 3;
      buf[i] = (total >> 2) & 2047;
    }
  }
  printf("%d", total);
  return 0;
}
"""


@pytest.fixture(scope="module")
def profile_and_trace():
    return profile_workload(WORKLOAD)


class TestFidelityReport:
    def test_perfect_report_scores_one(self):
        report = FidelityReport(0.0, 0.0, 0.0, 1000)
        assert report.score == 1.0
        assert report.acceptable()

    def test_bad_mix_tanks_score(self):
        report = FidelityReport(0.5, 0.0, 0.0, 1000)
        assert report.score == 0.0
        assert not report.acceptable()

    def test_weighting_order(self):
        mix_bad = FidelityReport(0.1, 0.0, 0.0, 0).score
        cache_bad = FidelityReport(0.0, 0.1, 0.0, 0).score
        branch_bad = FidelityReport(0.0, 0.0, 0.1, 0).score
        assert mix_bad < cache_bad < branch_bad


class TestValidateClone:
    def test_reasonable_clone_scores_well(self, profile_and_trace):
        profile, trace = profile_and_trace
        clone = synthesize(profile, target_instructions=15_000)
        report = validate_clone(profile, clone, original_trace=trace)
        assert report.score > 0.6, report
        assert report.instructions > 1000

    def test_report_axes_bounded(self, profile_and_trace):
        profile, trace = profile_and_trace
        clone = synthesize(profile, target_instructions=15_000)
        report = validate_clone(profile, clone, original_trace=trace)
        assert 0.0 <= report.mix_distance <= 1.0
        assert 0.0 <= report.cache_distance <= 1.0
        assert 0.0 <= report.branch_distance <= 1.0


class TestSynthesizeValidated:
    def test_returns_acceptable_or_best(self, profile_and_trace):
        profile, trace = profile_and_trace
        clone, report = synthesize_validated(
            profile,
            threshold=0.6,
            initial_target=4_000,
            max_target=32_000,
            original_trace=trace,
        )
        assert clone.source
        assert report.score > 0.4

    def test_low_threshold_stops_at_first_size(self, profile_and_trace):
        profile, trace = profile_and_trace
        clone, report = synthesize_validated(
            profile,
            threshold=0.0,
            initial_target=4_000,
            original_trace=trace,
        )
        # threshold 0 accepts immediately: the smallest target is used.
        assert report.instructions < 20_000
