"""Fast-engine equivalence suite: python vs fast must be byte-identical.

The fast engine's contract is pickle-equality of the full
:class:`ExecutionTrace` — block sequence, memory-address stream, branch
log, output, exit value, instruction count — plus exact ``SimTrap``
parity (same trap kind and message at the same boundary).

``REPRO_EXEC_EQUIV_ALL=1`` widens the traced sweep from the sample pairs
to every workload pair (the CI fast leg's job).
"""

import gc
import os
import pickle

import pytest

from repro.cc.driver import compile_program
from repro.sim import fastexec
from repro.sim.functional import SimTrap, Simulator, run_binary
from repro.workloads import WORKLOADS, all_pairs

# Loop-heavy, call-heavy, FP-heavy and branchy workloads; small inputs
# keep the tier-1 run fast.  dijkstra exercises the memo-hit path.
SAMPLE_PAIRS = (
    ("bitcount", "small"),
    ("crc32", "small"),
    ("dijkstra", "small"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
)


def equiv_pairs():
    if os.environ.get("REPRO_EXEC_EQUIV_ALL") == "1":
        return tuple(all_pairs())
    return SAMPLE_PAIRS


_BINARIES: dict = {}


def binary_for(workload: str, input_name: str):
    key = (workload, input_name)
    if key not in _BINARIES:
        source = WORKLOADS[workload].source_for(input_name)
        _BINARIES[key] = compile_program(source, "x86", 0).binary
    return _BINARIES[key]


def assert_equivalent(binary, collect_trace: bool = True) -> None:
    ref = Simulator(binary)._run_python(collect_trace)
    fast = fastexec.FastSimulator(binary).run(collect_trace)
    assert pickle.dumps(ref) == pickle.dumps(fast)


class TestTraceEquivalence:
    @pytest.mark.parametrize("workload,input_name", equiv_pairs())
    def test_traced_byte_identical(self, workload, input_name):
        assert_equivalent(binary_for(workload, input_name), collect_trace=True)

    @pytest.mark.parametrize("workload,input_name", SAMPLE_PAIRS)
    def test_untraced_byte_identical(self, workload, input_name):
        assert_equivalent(binary_for(workload, input_name), collect_trace=False)

    @pytest.mark.parametrize("workload,input_name", SAMPLE_PAIRS[:3])
    def test_memo_kill_switch_byte_identical(self, workload, input_name,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_SIM_MEMO", "0")
        assert_equivalent(binary_for(workload, input_name), collect_trace=True)


class TestTrapParity:
    def trap_message(self, run, *args, **kwargs) -> str:
        with pytest.raises(SimTrap) as excinfo:
            run(*args, **kwargs)
        return str(excinfo.value)

    def assert_same_trap(self, binary, needle: str, **sim_kwargs) -> None:
        ref = self.trap_message(
            lambda: Simulator(binary, **sim_kwargs)._run_python(True))
        fast = self.trap_message(
            lambda: fastexec.FastSimulator(binary, **sim_kwargs).run(True))
        assert ref == fast
        assert needle in fast

    def test_budget_exhaustion(self):
        binary = compile_program("int main() { while (1) { } return 0; }",
                                 "x86", 0).binary
        self.assert_same_trap(binary, "budget", max_instructions=10_000)

    def test_budget_boundary_is_exact(self):
        """Trap-vs-complete must flip at the same instruction count."""
        binary = binary_for("bitcount", "small")
        total = Simulator(binary)._run_python(True).instructions
        for runner in (
            lambda mi: Simulator(binary, max_instructions=mi)._run_python(True),
            lambda mi: fastexec.FastSimulator(binary, mi).run(True),
        ):
            assert runner(total).instructions == total
            with pytest.raises(SimTrap, match="budget"):
                runner(total - 1)

    def test_division_by_zero(self):
        binary = compile_program(
            "int main() { int z = 0; return 1 / z; }", "x86", 0).binary
        self.assert_same_trap(binary, "division by zero")

    @pytest.mark.parametrize("idx,kind", [
        (-2000000000, "load"), (2000000000, "load"),
    ])
    def test_out_of_range_load(self, idx, kind):
        binary = compile_program(
            "int t[4];\n"
            "int peek(int i) { return t[i]; }\n"
            f"int main() {{ printf(\"%d\", peek({idx})); return 0; }}",
            "x86", 0).binary
        self.assert_same_trap(binary, f"{kind} out of range")

    @pytest.mark.parametrize("idx", [-2000000000, 2000000000])
    def test_out_of_range_store(self, idx):
        binary = compile_program(
            "int t[4];\n"
            "void poke(int i) { t[i] = 7; }\n"
            f"int main() {{ poke({idx}); return 0; }}",
            "x86", 0).binary
        self.assert_same_trap(binary, "store out of range")


class TestSelection:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_EXEC", raising=False)
        assert fastexec.select_exec() == "fast"

    @pytest.mark.parametrize("choice", ["python", "fast"])
    def test_explicit_choice(self, choice, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_EXEC", choice)
        assert fastexec.select_exec() == choice

    def test_unknown_choice_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_EXEC", "numpy")
        with pytest.raises(ValueError, match="REPRO_SIM_EXEC"):
            fastexec.select_exec()

    def test_run_binary_routes_by_env(self, monkeypatch):
        """The public entry point honors the selector and both routes
        agree byte-for-byte."""
        binary = binary_for("crc32", "small")
        monkeypatch.setenv("REPRO_SIM_EXEC", "python")
        via_python = run_binary(binary)
        monkeypatch.setenv("REPRO_SIM_EXEC", "fast")
        via_fast = run_binary(binary)
        assert pickle.dumps(via_python) == pickle.dumps(via_fast)


class TestSegmentMemo:
    def test_memo_engages(self):
        """Anchored loops must actually replay memoized iterations —
        otherwise the equivalence above only covers compiled blocks."""
        binary = binary_for("dijkstra", "small")
        unit = fastexec._compiled_unit(binary, True)
        assert unit is not None and unit.anchors
        before = sum(a.hits for a in unit.anchors)
        fastexec.FastSimulator(binary).run(True)
        assert sum(a.hits for a in unit.anchors) > before

    def test_adaptive_anchors_self_disable(self):
        """Loops whose entry state never repeats (bitcount's LCG-driven
        kernels) must shut their anchors off instead of probing forever."""
        binary = binary_for("bitcount", "small")
        unit = fastexec._compiled_unit(binary, True)
        assert unit is not None
        fastexec.FastSimulator(binary).run(True)
        probed = [a for a in unit.anchors if a.probes]
        assert probed
        assert all(not a.on or a.hits for a in probed)


class TestCompiledCache:
    SOURCE = ('int main() { int i; int s; s = 0; '
              'for (i = 0; i < 10; i = i + 1) { s = s + i; } '
              'printf("%d", s); return 0; }')

    def test_unit_reused_per_binary(self):
        binary = compile_program(self.SOURCE, "x86", 0).binary
        unit1 = fastexec._compiled_unit(binary, True)
        unit2 = fastexec._compiled_unit(binary, True)
        assert unit1 is not None and unit1 is unit2

    def test_traced_and_untraced_compile_separately(self):
        binary = compile_program(self.SOURCE, "x86", 0).binary
        traced = fastexec._compiled_unit(binary, True)
        untraced = fastexec._compiled_unit(binary, False)
        assert traced is not untraced
        assert traced.traced and not untraced.traced

    def test_cache_entry_dies_with_binary(self):
        gc.collect()  # flush earlier tests' cyclic garbage first
        binary = compile_program(self.SOURCE, "x86", 0).binary
        fastexec._compiled_unit(binary, True)
        before = fastexec.compiled_cache_size()
        del binary
        gc.collect()
        assert fastexec.compiled_cache_size() == before - 1

    def test_debug_hook_records_units(self):
        binary = compile_program(self.SOURCE, "x86", 0).binary
        fastexec.EXEC_DEBUG = {}
        try:
            fastexec.FastSimulator(binary).run(True)
            units = fastexec.EXEC_DEBUG.get("units")
            assert units and units[0]["traced"]
        finally:
            fastexec.EXEC_DEBUG = None
