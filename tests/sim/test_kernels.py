"""Batched replay kernels: byte-identical equivalence + selection.

The contract under test is absolute: for every trace and every
configuration, :func:`repro.sim.kernels.replay_trace` must produce a
:class:`TimingResult` whose *pickle bytes* equal the pure-python
model's — scalars and exp-histogram snapshots alike.  Equivalence is
checked three ways:

* real workload traces (a cross-section of the suite's small inputs,
  both cycle models; every pair + Table III machine with
  ``REPRO_KERNEL_EQUIV_ALL=1``);
* the five Table III machines on one trace (distinct cache/ROB/width
  geometries, in-order and out-of-order);
* seeded random mutations of a real trace (addresses and branch
  outcomes rewritten), so the segment memo and periodic-region paths
  see streams no real program produces.
"""

from __future__ import annotations

import gc
import pickle
import random

import pytest

from repro.cc.driver import compile_program
from repro.sim import kernels
from repro.sim.functional import run_binary
from repro.sim.inorder import InOrderModel
from repro.sim.machines import MACHINES
from repro.sim.ooo import OutOfOrderModel
from repro.sim.timing_common import TimingConfig, decode_binary
from repro.sim.trace import ExecutionTrace
from repro.workloads import WORKLOADS

pytestmark = pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="numpy not installed"
)

np = kernels.np  # None when numpy is missing; every test here is skipped

# Loop-heavy, call-heavy, FP-heavy and branchy workloads; small inputs
# keep the tier-1 run fast.  REPRO_KERNEL_EQUIV_ALL=1 widens this to
# every pair (the CI numpy leg's job).
SAMPLE_PAIRS = (
    ("bitcount", "small"),
    ("crc32", "small"),
    ("fft", "small"),
    ("qsort", "small"),
    ("sha", "small"),
    ("stringsearch", "small"),
)

_TRACES: dict[tuple, ExecutionTrace] = {}


def trace_for(workload: str, input_name: str) -> ExecutionTrace:
    key = (workload, input_name)
    if key not in _TRACES:
        source = WORKLOADS[workload].source_for(input_name)
        binary = compile_program(source, "x86", 0).binary
        _TRACES[key] = run_binary(binary)
    return _TRACES[key]


def assert_equivalent(model, trace) -> None:
    decoded = decode_binary(trace.binary)
    py = model.replay(trace, decoded)
    fast = kernels.replay_trace(model, trace, decoded)
    assert pickle.dumps(py) == pickle.dumps(fast), (
        f"{type(model).__name__} diverged: py={py} np={fast}")


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("workload,input_name", SAMPLE_PAIRS)
    def test_ooo_byte_identical(self, workload, input_name):
        assert_equivalent(OutOfOrderModel(), trace_for(workload, input_name))

    @pytest.mark.parametrize("workload,input_name", SAMPLE_PAIRS)
    def test_inorder_byte_identical(self, workload, input_name):
        assert_equivalent(InOrderModel(), trace_for(workload, input_name))

    def test_segment_memo_engages(self):
        """The block-memoized path must actually carry real traces —
        otherwise the equivalence above only covers the interpreter."""
        trace = trace_for("crc32", "small")
        kernels.SEG_DEBUG = {}
        try:
            assert_equivalent(OutOfOrderModel(), trace)
            assert kernels.SEG_DEBUG.get("hit", 0) > 0, kernels.SEG_DEBUG
        finally:
            kernels.SEG_DEBUG = None

    def test_memo_persists_across_replays_of_one_binary(self):
        """Second replay of the same binary under the same config must
        hit the per-binary memo far more than it misses."""
        trace = trace_for("sha", "small")
        model = InOrderModel()
        kernels.replay_trace(model, trace)  # populate
        kernels.SEG_DEBUG = {}
        try:
            kernels.replay_trace(model, trace)
            hits = kernels.SEG_DEBUG.get("hit", 0)
            misses = kernels.SEG_DEBUG.get("miss", 0)
            assert hits > 10 * max(misses, 1), kernels.SEG_DEBUG
        finally:
            kernels.SEG_DEBUG = None


class TestMachineMatrix:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_table_iii_byte_identical(self, machine):
        trace = trace_for("fft", "small")
        model = machine.model()
        assert_equivalent(model, trace)


@pytest.mark.skipif("not __import__('os').environ.get('REPRO_KERNEL_EQUIV_ALL')")
class TestFullSuiteEquivalence:
    """The acceptance sweep: every pair, both models (CI numpy leg)."""

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("input_name", ("small", "large"))
    def test_every_pair(self, workload, input_name):
        trace = trace_for(workload, input_name)
        assert_equivalent(OutOfOrderModel(), trace)
        assert_equivalent(InOrderModel(), trace)


def _mutated(trace: ExecutionTrace, seed: int) -> ExecutionTrace:
    """A trace no real program produces, yet valid by construction:
    same block sequence (so stream lengths still match the binary),
    random data addresses, random branch outcomes."""
    rng = random.Random(seed)
    mem = [rng.randrange(0, 1 << 20) & ~3 for _ in trace.mem_addrs]
    branches = [(entry & ~1) | rng.randint(0, 1) for entry in trace.branch_log]
    return ExecutionTrace(
        binary=trace.binary,
        block_seq=list(trace.block_seq),
        mem_addrs=mem,
        branch_log=branches,
        output=trace.output,
        exit_value=trace.exit_value,
        instructions=trace.instructions,
    )


class TestRandomTraceProperty:
    """Seeded random streams through both kernels (property-style)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_streams_stay_byte_identical(self, seed):
        base = trace_for("qsort", "small")
        trace = _mutated(base, seed)
        model = OutOfOrderModel() if seed % 2 else InOrderModel()
        assert_equivalent(model, trace)

    @pytest.mark.parametrize("seed", (7, 8))
    def test_random_streams_under_nondefault_geometry(self, seed):
        trace = _mutated(trace_for("fft", "small"), seed)
        config = TimingConfig(width=4, rob_size=16, l1_hit_cycles=2,
                              l2_hit_cycles=9, memory_cycles=200,
                              mispredict_penalty=5)
        assert_equivalent(OutOfOrderModel(config), trace)


class TestSelection:
    def _long_trace(self):
        return trace_for("crc32", "small")  # ~196k instrs > threshold

    def test_auto_picks_numpy_past_threshold(self):
        assert kernels.select_kernel(
            OutOfOrderModel(), self._long_trace()) == "numpy"

    def test_auto_keeps_python_below_threshold(self, fib_source):
        trace = run_binary(compile_program(fib_source, "x86", 0).binary)
        assert trace.instructions < kernels.AUTO_THRESHOLD
        assert kernels.select_kernel(OutOfOrderModel(), trace) == "python"

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL_THRESHOLD", "1")
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        trace = self._long_trace()
        assert kernels.select_kernel(InOrderModel(), trace) == "numpy"
        monkeypatch.setenv("REPRO_SIM_KERNEL_THRESHOLD",
                           str(trace.instructions + 1))
        assert kernels.select_kernel(InOrderModel(), trace) == "python"

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "numpy")
        model = OutOfOrderModel(TimingConfig(kernel="python"))
        assert kernels.select_kernel(model, self._long_trace()) == "python"

    def test_env_selects_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "python")
        assert kernels.select_kernel(
            OutOfOrderModel(), self._long_trace()) == "python"
        monkeypatch.setenv("REPRO_SIM_KERNEL", "numpy")
        assert kernels.select_kernel(
            OutOfOrderModel(), self._long_trace()) == "numpy"

    def test_unknown_kernel_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "fortran")
        with pytest.raises(ValueError, match="fortran"):
            kernels.select_kernel(OutOfOrderModel(), self._long_trace())

    def test_unbatched_model_falls_back_with_warning(self, monkeypatch):
        class Oddball:
            config = TimingConfig(kernel="numpy")

        monkeypatch.setattr(kernels, "_warned_fallback", False)
        with pytest.warns(RuntimeWarning, match="no batched kernel"):
            assert kernels.select_kernel(Oddball(), self._long_trace()) \
                == "python"
        # One-time warning: a second call is silent.
        assert kernels.select_kernel(Oddball(), self._long_trace()) \
            == "python"

    def test_simulate_dispatch_is_byte_identical(self):
        """The TimingModel.simulate hook end to end: explicit numpy vs
        explicit python via config, same bytes out."""
        trace = self._long_trace()
        fast = OutOfOrderModel(TimingConfig(kernel="numpy")).simulate(trace)
        slow = OutOfOrderModel(TimingConfig(kernel="python")).simulate(trace)
        assert pickle.dumps(fast) == pickle.dumps(slow)


class TestPackCacheLifetime:
    def test_pack_dies_with_its_trace(self, loopy_source):
        binary = compile_program(loopy_source, "x86", 0).binary
        trace = run_binary(binary)
        before = kernels.pack_cache_size()
        kernels.replay_trace(InOrderModel(), trace)
        assert kernels.pack_cache_size() == before + 1
        del trace
        gc.collect()
        assert kernels.pack_cache_size() == before


class TestPredictorVectorization:
    """The segmented-scan predictor pass is pinned to the reference loop."""

    def test_composition_table_semantics(self):
        """_COMP[a, b] must encode f_b . f_a over all 4 counter states."""
        decode = lambda c: [(c >> (2 * s)) & 3 for s in range(4)]
        rng = np.random.default_rng(0)
        for a, b in rng.integers(0, 256, (500, 2)):
            fa, fb = decode(a), decode(b)
            assert decode(int(kernels._COMP[a, b])) == [
                fb[fa[s]] for s in range(4)
            ]

    @pytest.mark.parametrize("entries", [64, 1024, 4096])
    def test_pin_on_random_streams(self, entries):
        rng = np.random.default_rng(entries)
        for n in (4096, 5001, 20000):
            pcs = rng.integers(0, 150, n, dtype=np.int64)
            taken = rng.integers(0, 2, n, dtype=np.int64)
            br = (pcs << 1) | taken
            ref = kernels._predictor_sim_python(br, entries)
            vec = kernels._predictor_sim_numpy(br, entries)
            assert np.array_equal(ref[0], vec[0])
            assert ref[1:] == vec[1:]

    def test_pin_on_workload_stream(self):
        br = np.asarray(trace_for("crc32", "small").branch_log, dtype=np.int64)
        ref = kernels._predictor_sim_python(br, 2048)
        vec = kernels._predictor_sim_numpy(br, 2048)
        assert np.array_equal(ref[0], vec[0])
        assert ref[1:] == vec[1:]

    def test_dispatcher_matches_reference_below_threshold(self):
        rng = np.random.default_rng(7)
        n = kernels._PREDICTOR_VECTOR_MIN // 2
        br = (rng.integers(0, 50, n, dtype=np.int64) << 1) | rng.integers(
            0, 2, n, dtype=np.int64)
        ref = kernels._predictor_sim_python(br, 1024)
        got = kernels._predictor_sim(br, 1024)
        assert np.array_equal(ref[0], got[0])
        assert ref[1:] == got[1:]
