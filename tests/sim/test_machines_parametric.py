"""Parametric machine construction vs the five Table III constants."""

import pytest

from repro.cc.driver import compile_program
from repro.sim.functional import run_binary
from repro.sim.machines import (
    MACHINES,
    MachineSpec,
    SPEC_BY_NAME,
    TABLE_III_SPECS,
    machine_from_axes,
    spec_from_axes,
)


@pytest.fixture(scope="module")
def trace(fib_source):
    return run_binary(compile_program(fib_source, "x86", 0).binary)


class TestTableIIIEquivalence:
    def test_constants_are_built_from_specs(self):
        assert len(TABLE_III_SPECS) == len(MACHINES) == 5
        for spec, machine in zip(TABLE_III_SPECS, MACHINES):
            assert spec.name == machine.name
            assert spec.build() == machine

    def test_axes_roundtrip_reproduces_each_machine(self):
        for spec, machine in zip(TABLE_III_SPECS, MACHINES):
            rebuilt = machine_from_axes(name=spec.name, **spec.axes())
            assert rebuilt == machine

    def test_parametric_machines_reproduce_simulation_exactly(self, trace):
        """The fig11 acceptance check: identical timing, cycle for cycle."""
        for spec, machine in zip(TABLE_III_SPECS, MACHINES):
            parametric = machine_from_axes(name=spec.name, **spec.axes())
            assert parametric.simulate(trace) == machine.simulate(trace)
            assert parametric.runtime_seconds(trace) == \
                machine.runtime_seconds(trace)

    def test_spec_by_name_covers_the_quintet(self):
        assert set(SPEC_BY_NAME) == {m.name for m in MACHINES}

    def test_built_machines_carry_their_spec(self):
        for spec, machine in zip(TABLE_III_SPECS, MACHINES):
            assert machine.spec is not None
            assert machine.spec == spec


class TestFingerprint:
    def test_equal_axes_equal_fingerprint_names_never_matter(self):
        a = spec_from_axes(name="alpha", isa="x86", width=4)
        b = spec_from_axes(name="beta", isa="x86", width=4)
        assert a.fingerprint() == b.fingerprint()

    def test_every_cycle_axis_changes_the_fingerprint(self):
        base = spec_from_axes(isa="x86")
        for axis, value in (("isa", "ia64"), ("width", 8), ("rob", 3),
                            ("l1_kb", 64), ("l2_kb", 4096),
                            ("l1_hit_cycles", 9), ("l2_hit_cycles", 99),
                            ("memory_cycles", 999),
                            ("mispredict_penalty", 2),
                            ("predictor_entries", 128),
                            ("in_order", True)):
            changed = spec_from_axes(**{axis: value})
            assert changed.fingerprint() != base.fingerprint(), axis

    def test_frequency_is_excluded(self):
        # The clock scales cycles to seconds outside the cycle model;
        # two specs differing only in clock share replay artifacts.
        slow = spec_from_axes(isa="x86", frequency_ghz=1.0)
        fast = spec_from_axes(isa="x86", frequency_ghz=4.0)
        assert slow.fingerprint() == fast.fingerprint()

    def test_table_iii_fingerprints_are_distinct(self):
        prints = {spec.fingerprint() for spec in TABLE_III_SPECS}
        assert len(prints) == len(TABLE_III_SPECS)


class TestSpecConstruction:
    def test_defaults_produce_a_buildable_machine(self):
        machine = machine_from_axes()
        assert machine.isa.name == "x86"
        assert machine.timing.width == 2

    def test_derived_name_encodes_key_axes(self):
        spec = spec_from_axes(isa="ia64", width=6, rob=256)
        assert "ia64" in spec.name and "w6" in spec.name \
            and "rob256" in spec.name

    def test_explicit_axes_land_in_timing_config(self):
        machine = machine_from_axes(
            isa="x86_64", width=4, rob=128, l1_kb=64, l2_kb=4096,
            l1_hit_cycles=2, memory_cycles=90, mispredict_penalty=10,
            predictor_entries=8192, frequency_ghz=3.2,
        )
        timing = machine.timing
        assert timing.width == 4
        assert timing.rob_size == 128
        assert timing.l1.size_bytes == 64 * 1024
        assert timing.l2.size_bytes == 4096 * 1024
        assert timing.memory_cycles == 90
        assert timing.predictor_entries == 8192
        assert machine.frequency_ghz == 3.2
        assert machine.isa.name == "x86_64"

    def test_unknown_isa_rejected_at_build(self):
        with pytest.raises(KeyError, match="sparc"):
            machine_from_axes(isa="sparc")

    def test_unknown_axis_rejected(self):
        with pytest.raises(TypeError):
            spec_from_axes(l3_kb=1024)

    def test_in_order_machines_use_the_inorder_model(self, trace):
        ooo = machine_from_axes(width=4)
        ino = machine_from_axes(width=4, in_order=True)
        assert ino.simulate(trace).cycles >= ooo.simulate(trace).cycles

    def test_spec_axes_exclude_name(self):
        axes = MachineSpec(name="anything").axes()
        assert "name" not in axes
