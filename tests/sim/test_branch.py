"""Branch predictor tests."""

from hypothesis import given, settings, strategies as st

from repro.sim.branch import (
    BimodalPredictor,
    GsharePredictor,
    HybridPredictor,
    simulate_predictor,
)


def make_log(outcomes, pc=17):
    return [(pc << 1) | int(taken) for taken in outcomes]


class TestBimodal:
    def test_learns_always_taken(self):
        result = simulate_predictor(make_log([True] * 100), BimodalPredictor())
        assert result.accuracy > 0.95

    def test_learns_always_not_taken(self):
        result = simulate_predictor(make_log([False] * 100), BimodalPredictor())
        assert result.accuracy > 0.95

    def test_fails_on_alternating(self):
        outcomes = [i % 2 == 0 for i in range(200)]
        result = simulate_predictor(make_log(outcomes), BimodalPredictor())
        assert result.accuracy < 0.7

    def test_counter_saturation(self):
        predictor = BimodalPredictor(16)
        for _ in range(10):
            predictor.update(3, True)
        assert predictor.table[3] == 3
        predictor.update(3, False)
        assert predictor.predict(3) is True  # still weakly taken


class TestGshare:
    def test_learns_alternating_pattern(self):
        outcomes = [i % 2 == 0 for i in range(300)]
        result = simulate_predictor(make_log(outcomes), GsharePredictor())
        assert result.accuracy > 0.9

    def test_learns_short_period(self):
        outcomes = [(i % 4) < 2 for i in range(400)]
        result = simulate_predictor(make_log(outcomes), GsharePredictor())
        assert result.accuracy > 0.85

    def test_history_distinguishes_contexts(self):
        predictor = GsharePredictor(256, 4)
        before = predictor.history
        predictor.update(1, True)
        assert predictor.history != before


class TestHybrid:
    def test_beats_bimodal_on_patterns(self):
        outcomes = [(i % 4) < 2 for i in range(400)]
        log = make_log(outcomes)
        hybrid = simulate_predictor(log, HybridPredictor())
        bimodal = simulate_predictor(log, BimodalPredictor())
        assert hybrid.accuracy >= bimodal.accuracy

    def test_matches_bimodal_on_biased(self):
        outcomes = [True] * 500
        log = make_log(outcomes)
        hybrid = simulate_predictor(log, HybridPredictor())
        assert hybrid.accuracy > 0.95

    def test_multiple_branch_sites(self):
        log = []
        for i in range(300):
            log.append((10 << 1) | 1)  # always taken
            log.append((20 << 1) | 0)  # never taken
            log.append((30 << 1) | (i % 2))  # alternating
        result = simulate_predictor(log, HybridPredictor())
        assert result.accuracy > 0.9

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.booleans(), min_size=1, max_size=400))
    def test_accuracy_bounds(self, outcomes):
        result = simulate_predictor(make_log(outcomes), HybridPredictor())
        assert 0.0 <= result.accuracy <= 1.0
        assert result.branches == len(outcomes)
        assert result.correct + result.misses == result.branches

    def test_default_predictor_is_hybrid(self):
        result = simulate_predictor(make_log([True] * 10))
        assert result.branches == 10


class TestRunHistogram:
    def test_mispredicts_record_run_lengths(self):
        predictor = HybridPredictor()
        # Alternating pattern at one PC: early mispredicts while the
        # tables train, so at least one run gets flushed.
        simulate_predictor(make_log([bool(i % 2) for i in range(64)]),
                           predictor)
        predictor.finalize_runs()
        data = predictor.run_hist.snapshot_data()
        assert data["count"] > 0
        assert sum(data["buckets"].values()) == data["count"]

    def test_finalize_flushes_trailing_run(self):
        predictor = HybridPredictor()
        simulate_predictor(make_log([True] * 50), predictor)
        before = predictor.run_hist.count
        predictor.finalize_runs()
        assert predictor.run_hist.count >= before
        # A second finalize is a no-op.
        after = predictor.run_hist.count
        predictor.finalize_runs()
        assert predictor.run_hist.count == after

    def test_run_count_matches_mispredicts_plus_tail(self):
        predictor = HybridPredictor()
        result = simulate_predictor(
            make_log([bool((i // 3) % 2) for i in range(90)]), predictor)
        predictor.finalize_runs()
        # One run recorded per mispredict, plus at most one trailing run.
        assert result.misses <= predictor.run_hist.count \
            <= result.misses + 1
