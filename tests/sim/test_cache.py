"""Cache model tests, including the LRU stack property."""

from hypothesis import given, settings, strategies as st

from repro.sim.cache import Cache, CacheConfig, simulate_cache, sweep_cache_sizes


class TestBasicBehaviour:
    def test_first_access_misses(self):
        cache = Cache(CacheConfig(1024, 32, 2))
        assert cache.access(0) is False

    def test_same_line_hits(self):
        cache = Cache(CacheConfig(1024, 32, 2))
        cache.access(0)
        assert cache.access(4) is True  # same 32-byte line
        assert cache.access(31) is True

    def test_next_line_misses(self):
        cache = Cache(CacheConfig(1024, 32, 2))
        cache.access(0)
        assert cache.access(32) is False

    def test_lru_eviction_order(self):
        # Direct-mapped-by-set: 2 ways, force 3 lines into one set.
        config = CacheConfig(size_bytes=64 * 2, line_bytes=32, associativity=2)
        cache = Cache(config)
        num_sets = config.num_sets
        stride = 32 * num_sets  # same set every time
        cache.access(0)
        cache.access(stride)
        cache.access(2 * stride)  # evicts line 0 (LRU)
        assert cache.access(stride) is True
        assert cache.access(0) is False

    def test_lru_refresh_on_hit(self):
        config = CacheConfig(size_bytes=64 * 2, line_bytes=32, associativity=2)
        cache = Cache(config)
        stride = 32 * config.num_sets
        cache.access(0)
        cache.access(stride)
        cache.access(0)  # refresh: line 0 becomes MRU
        cache.access(2 * stride)  # evicts `stride`, not 0
        assert cache.access(0) is True

    def test_counters(self):
        cache = Cache(CacheConfig(1024, 32, 2))
        for addr in (0, 0, 32, 0):
            cache.access(addr)
        assert cache.hits == 2
        assert cache.misses == 2
        assert cache.hit_rate == 0.5


class TestStridePatterns:
    """Table I's foundation: stride s over a huge array misses s/32."""

    def _miss_rate(self, stride_bytes: int) -> float:
        cache = Cache(CacheConfig(8 * 1024, 32, 4))
        address = 0
        span = 1 << 22  # far larger than the cache
        for _ in range(20000):
            cache.access(address % span)
            address += stride_bytes
        return cache.miss_rate

    def test_stride_zero_always_hits(self):
        assert self._miss_rate(0) < 0.01

    def test_stride_4_misses_one_in_eight(self):
        assert abs(self._miss_rate(4) - 0.125) < 0.01

    def test_stride_16_misses_half(self):
        assert abs(self._miss_rate(16) - 0.5) < 0.01

    def test_stride_32_always_misses(self):
        assert self._miss_rate(32) > 0.99


class TestSweep:
    def test_sweep_returns_all_sizes(self):
        addrs = list(range(0, 4096, 4))
        rates = sweep_cache_sizes(addrs, [1024, 2048, 4096])
        assert set(rates) == {1024, 2048, 4096}

    def test_working_set_knee(self):
        """Miss rate collapses once the cache covers the working set."""
        working_set = list(range(0, 8 * 1024, 4)) * 8  # 8KB, re-walked
        rates = sweep_cache_sizes(working_set, [2 * 1024, 16 * 1024])
        miss_small = 1.0 - rates[2 * 1024]
        miss_large = 1.0 - rates[16 * 1024]
        assert miss_small > 5 * miss_large  # ~8x fewer misses past the knee

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(0, 1 << 16), min_size=10, max_size=300),
        st.sampled_from([1024, 2048, 4096]),
    )
    def test_hit_rate_monotonic_in_size_fully_assoc(self, addrs, size):
        """LRU inclusion property: bigger fully-associative cache never
        hits less (classic stack property of LRU)."""
        small = CacheConfig(size, 32, size // 32)  # fully associative
        big = CacheConfig(size * 2, 32, size * 2 // 32)
        small_hits = simulate_cache(addrs, small).hits
        big_hits = simulate_cache(addrs, big).hits
        assert big_hits >= small_hits

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
    def test_counters_sum_to_accesses(self, addrs):
        cache = simulate_cache(addrs, CacheConfig(2048, 32, 4))
        assert cache.hits + cache.misses == len(addrs)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 1 << 18), min_size=0, max_size=400),
        st.sampled_from([16, 32, 64]),
        st.sampled_from([1, 2, 4, 8]),
    )
    def test_sweep_matches_per_config_cache_replay(self, addrs, line,
                                                   assoc):
        """Pin the single-pass sweep (hoisted shift/set geometry)
        against a per-config :class:`Cache` replay of the same stream —
        hit rates must agree exactly for every size."""
        sizes = [512, 2048, 8192, 64 * 1024]
        swept = sweep_cache_sizes(addrs, sizes, line_bytes=line,
                                  associativity=assoc)
        for size in sizes:
            cache = simulate_cache(addrs, CacheConfig(size, line, assoc))
            assert swept[size] == cache.hit_rate, (size, line, assoc)

    def test_sweep_empty_stream_reports_unit_hit_rate(self):
        assert sweep_cache_sizes([], [1024]) == {1024: 1.0}


class TestLatencyHistogram:
    def test_record_latency_populates_histogram(self):
        cache = Cache(CacheConfig(1024, 32, 2))
        for cycles in (2, 2, 12, 120):
            cache.record_latency(cycles)
        data = cache.latency_hist.snapshot_data()
        assert data["count"] == 4
        assert data["min"] == 2
        assert data["max"] == 120
        assert sum(data["buckets"].values()) == 4

    def test_reset_clears_histogram(self):
        cache = Cache(CacheConfig(1024, 32, 2))
        cache.record_latency(5)
        cache.reset()
        assert cache.latency_hist.count == 0
