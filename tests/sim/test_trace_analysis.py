"""Trace-level analysis tests: edge replay, call counts, mixes."""

import pytest

from repro.cc.driver import compile_program
from repro.sim.functional import run_binary
from tests.conftest import run_source

CALL_HEAVY = """
int leaf(int x) { return x * 3 + 1; }
int middle(int x) {
  int i;
  int acc = 0;
  for (i = 0; i < 4; i++) { acc = acc + leaf(x + i); }
  return acc;
}
int main() {
  int total = 0;
  int k;
  for (k = 0; k < 25; k++) { total = total + middle(k); }
  printf("%d", total);
  return 0;
}
"""


@pytest.fixture(scope="module")
def call_trace():
    return run_source(CALL_HEAVY)


class TestEdgeCounts:
    def test_edges_conserve_flow(self, call_trace):
        """Within a function, in-flow == out-flow for interior blocks."""
        edges = call_trace.edge_counts()
        binary = call_trace.binary
        counts = call_trace.block_counts()
        # For the loop header of `middle`, in == executions.
        for gbid, count in counts.items():
            func_idx, blk_idx = binary.block_map[gbid]
            func = binary.functions[func_idx]
            if blk_idx == 0:
                continue  # entries come from calls, not edges
            in_flow = sum(c for (s, d), c in edges.items() if d == gbid)
            assert in_flow == count, (func.name, blk_idx, in_flow, count)

    def test_edges_are_intra_function(self, call_trace):
        binary = call_trace.binary
        for (src, dst), _count in call_trace.edge_counts().items():
            src_func = binary.block_map[src][0]
            dst_func = binary.block_map[dst][0]
            assert src_func == dst_func

    def test_call_continuation_edge_recorded(self, call_trace):
        """call-block -> continuation edges keep caller flow connected."""
        binary = call_trace.binary
        edges = call_trace.edge_counts()
        call_blocks = {
            blk.gbid
            for func in binary.functions
            for blk in func.blocks
            if blk.instrs and blk.instrs[-1].op == "call"
        }
        assert any(src in call_blocks for (src, _d) in edges)


class TestCallCounts:
    def test_exact_call_counts(self, call_trace):
        binary = call_trace.binary
        counts = call_trace.call_counts()
        by_name = {
            binary.functions[idx].name: count for idx, count in counts.items()
        }
        assert by_name["middle"] == 25
        assert by_name["leaf"] == 100

    def test_main_never_called(self, call_trace):
        binary = call_trace.binary
        counts = call_trace.call_counts()
        assert binary.entry not in counts


class TestSummary:
    def test_summary_fields(self, call_trace):
        summary = call_trace.summary()
        assert summary["instructions"] == call_trace.instructions
        assert abs(sum(summary["mix"].values()) - 1.0) < 1e-9
        assert summary["branches"] == len(call_trace.branch_log)

    def test_output_isolated_per_run(self):
        binary = compile_program(CALL_HEAVY).binary
        first = run_binary(binary)
        second = run_binary(binary)
        assert first.output == second.output
        assert first.block_seq == second.block_seq
