"""Timing model tests: OoO, in-order, machine models."""

import pytest

from repro.sim.cache import CacheConfig
from repro.sim.inorder import InOrderModel
from repro.sim.machines import ITANIUM2, MACHINES, PENTIUM4_3GHZ
from repro.sim.ooo import OutOfOrderModel, TimingConfig
from tests.conftest import run_source

DEPENDENT_CHAIN = """
int main() {
  int x = 1;
  int i;
  for (i = 0; i < 2000; i++) {
    x = x * 3;
    x = x + 7;
    x = x ^ 11;
    x = x - 2;
  }
  printf("%d", x & 255);
  return 0;
}
"""

FLOAT_HEAVY = """
int main() {
  float x = 1.1;
  float total = 0.0;
  int i;
  for (i = 0; i < 1500; i++) {
    total = total + sin(x) * cos(x);
    x = x + 0.01;
  }
  printf("%.2f", total);
  return 0;
}
"""

MEMORY_STREAM = """
unsigned buf[16384];
int main() {
  unsigned total = 0u;
  int i;
  int r;
  for (r = 0; r < 6; r++) {
    for (i = 0; i < 16384; i = i + 8) {
      total = total + buf[i];
    }
  }
  printf("%u", total);
  return 0;
}
"""


def cpi_of(model, source, opt_level=0):
    trace = run_source(source, opt_level=opt_level)
    return model.simulate(trace).cpi


class TestOutOfOrder:
    def test_cpi_positive_and_sane(self, fib_source):
        trace = run_source(fib_source)
        result = OutOfOrderModel().simulate(trace)
        assert 0.3 < result.cpi < 10
        assert result.instructions == trace.instructions

    def test_float_code_has_higher_cpi(self):
        model = OutOfOrderModel()
        assert cpi_of(model, FLOAT_HEAVY) > cpi_of(model, DEPENDENT_CHAIN)

    def test_cache_misses_raise_cpi(self):
        small = TimingConfig(l1=CacheConfig(1024, 32, 4), l2=None)
        large = TimingConfig(l1=CacheConfig(256 * 1024, 32, 4), l2=None)
        trace = run_source(MEMORY_STREAM)
        cpi_small = OutOfOrderModel(small).simulate(trace).cpi
        cpi_large = OutOfOrderModel(large).simulate(trace).cpi
        assert cpi_small > cpi_large * 1.2

    def test_wider_dispatch_not_slower(self, loopy_source):
        trace = run_source(loopy_source)
        narrow = OutOfOrderModel(TimingConfig(width=1)).simulate(trace).cycles
        wide = OutOfOrderModel(TimingConfig(width=4)).simulate(trace).cycles
        assert wide <= narrow

    def test_bigger_rob_not_slower(self, loopy_source):
        trace = run_source(loopy_source)
        small = OutOfOrderModel(TimingConfig(rob_size=8)).simulate(trace).cycles
        big = OutOfOrderModel(TimingConfig(rob_size=256)).simulate(trace).cycles
        assert big <= small

    def test_branch_stats_recorded(self, fib_source):
        trace = run_source(fib_source)
        result = OutOfOrderModel().simulate(trace)
        assert result.branch_hits + result.branch_misses == len(trace.branch_log)


class TestInOrder:
    def test_in_order_slower_than_ooo_on_chains(self):
        trace = run_source(DEPENDENT_CHAIN)
        in_order = InOrderModel().simulate(trace).cycles
        out_of_order = OutOfOrderModel().simulate(trace).cycles
        assert in_order >= out_of_order

    def test_optimization_helps_itanium_substantially(self, loopy_source):
        """The paper's Itanium observation (Fig. 11): the statically
        scheduled machine gains a lot from compiler optimization and
        stays the slowest machine even at -O2.  (The stronger
        "gains *more* than x86" claim is suite-level and asserted by
        benchmarks/bench_fig11_machines.py.)"""
        o0 = run_source(loopy_source, isa=ITANIUM2.isa.name, opt_level=0)
        o2 = run_source(loopy_source, isa=ITANIUM2.isa.name, opt_level=2)
        speedup = ITANIUM2.runtime_seconds(o0) / ITANIUM2.runtime_seconds(o2)
        assert speedup > 1.3
        p4_o2 = run_source(loopy_source, isa="x86", opt_level=2)
        assert ITANIUM2.runtime_seconds(o2) > PENTIUM4_3GHZ.runtime_seconds(p4_o2)


class TestMachines:
    def test_table_iii_has_five_machines(self):
        assert len(MACHINES) == 5
        names = {machine.name for machine in MACHINES}
        assert "Itanium 2" in names
        assert "Core i7" in names

    def test_itanium_is_in_order(self):
        assert ITANIUM2.in_order is True
        assert ITANIUM2.isa.name == "ia64"

    def test_pentium4_is_x86(self):
        assert PENTIUM4_3GHZ.isa.name == "x86"
        assert PENTIUM4_3GHZ.frequency_ghz == 3.0

    def test_runtime_scales_with_frequency(self, fib_source):
        trace = run_source(fib_source)
        p4_time = PENTIUM4_3GHZ.runtime_seconds(trace)
        assert p4_time > 0

    def test_itanium_slowest_at_o0(self, loopy_source):
        """Fig. 11's headline ordering at -O0."""
        times = {}
        for machine in MACHINES:
            trace = run_source(loopy_source, isa=machine.isa.name, opt_level=0)
            times[machine.name] = machine.runtime_seconds(trace)
        slowest = max(times, key=times.get)
        assert slowest == "Itanium 2"


class TestDecodeCache:
    """The module-level weak decode cache: one decode per live binary."""

    def test_same_binary_decodes_once(self, fib_source):
        from repro.sim.timing_common import decode_binary

        trace = run_source(fib_source)
        first = decode_binary(trace.binary)
        assert decode_binary(trace.binary) is first
        assert len(first) == len(trace.binary.block_map)

    def test_models_share_the_decode(self, fib_source):
        """N machine configurations on one trace decode exactly once."""
        from repro.sim import timing_common
        from repro.sim.timing_common import decode_binary

        trace = run_source(fib_source)
        decoded = decode_binary(trace.binary)
        seen = []
        original = timing_common.decode_instruction

        def counting(ins):
            seen.append(ins)
            return original(ins)

        timing_common.decode_instruction = counting
        try:
            for machine in MACHINES:
                machine.simulate(trace)
        finally:
            timing_common.decode_instruction = original
        assert seen == []  # every model reused the cached decode
        assert decode_binary(trace.binary) is decoded

    def test_cache_entries_die_with_their_binary(self, fib_source):
        import gc

        from repro.sim.timing_common import decode_binary, decode_cache_size

        trace = run_source(fib_source)
        decode_binary(trace.binary)
        before = decode_cache_size()
        del trace
        gc.collect()
        assert decode_cache_size() < before

    def test_decoded_binary_is_indexable(self, fib_source):
        from repro.sim.timing_common import DecodedOp, decode_binary

        trace = run_source(fib_source)
        decoded = decode_binary(trace.binary)
        assert all(isinstance(op, DecodedOp) for op in decoded[0])


class TestResultHistograms:
    """TimingResult carries the simulator latency/run distributions the
    sweep scores as divergence components."""

    def test_memory_code_fills_mem_latency_histogram(self):
        model = OutOfOrderModel(TimingConfig(
            l1=CacheConfig(4096, 32, 2), l2=None, memory_cycles=100))
        trace = run_source(MEMORY_STREAM)
        result = model.simulate(trace)
        hist = result.mem_lat_hist
        assert hist is not None
        assert hist["count"] > 0
        assert hist["max"] >= hist["min"] > 0
        assert all(isinstance(k, int) for k in hist["buckets"])

    def test_branchy_code_fills_run_histogram(self):
        model = OutOfOrderModel(TimingConfig())
        trace = run_source(DEPENDENT_CHAIN)
        result = model.simulate(trace)
        assert result.branch_run_hist is not None
        assert result.branch_run_hist["count"] > 0

    def test_in_order_model_also_records(self):
        model = InOrderModel(TimingConfig(l1=CacheConfig(4096, 32, 2)))
        trace = run_source(MEMORY_STREAM)
        result = model.simulate(trace)
        assert result.mem_lat_hist is not None
        assert result.mem_lat_hist["count"] > 0

    def test_repeat_simulation_is_deterministic(self):
        model = OutOfOrderModel(TimingConfig())
        trace = run_source(DEPENDENT_CHAIN)
        first = model.simulate(trace)
        second = model.simulate(trace)
        assert first.mem_lat_hist == second.mem_lat_hist
        assert first.branch_run_hist == second.branch_run_hist
