"""Functional simulator semantics tests (the compiler+ISA oracle suite)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.ops_eval import to_signed
from repro.sim.functional import SimTrap, Simulator
from repro.cc.driver import compile_program
from tests.conftest import run_source

WORD = 0xFFFFFFFF


def run_expr(expr: str, decls: str = "", fmt: str = "%d") -> str:
    source = f'int main() {{ {decls} printf("{fmt}", {expr}); return 0; }}'
    return run_source(source).output


class TestIntegerSemantics:
    def test_wrapping_addition(self):
        assert run_expr("a + 1", "int a = 2147483647;") == "-2147483648"

    def test_unsigned_wraparound(self):
        assert run_expr("a + 1u", "unsigned a = 4294967295u;", "%u") == "0"

    def test_truncating_division(self):
        assert run_expr("a / 2", "int a = -7;") == "-3"

    def test_remainder_sign(self):
        assert run_expr("a % 3", "int a = -7;") == "-1"

    def test_unsigned_division(self):
        assert run_expr("a / b", "unsigned a = 4294967290u; unsigned b = 7u;", "%u") == str(
            0xFFFFFFFA // 7
        )

    def test_arithmetic_shift_right(self):
        assert run_expr("a >> 2", "int a = -16;") == "-4"

    def test_logical_shift_right(self):
        assert run_expr("a >> 2", "unsigned a = 4294967280u;", "%u") == str(
            0xFFFFFFF0 >> 2
        )

    def test_signed_vs_unsigned_compare(self):
        assert run_expr("a < b", "int a = -1; int b = 1;") == "1"
        assert run_expr("a < b", "unsigned a = 4294967295u; unsigned b = 1u;") == "0"

    def test_division_by_zero_traps(self):
        with pytest.raises(SimTrap):
            run_source("int main() { int z = 0; return 1 / z; }")

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(-(2**31), 2**31 - 1),
        st.integers(-(2**31), 2**31 - 1),
        st.sampled_from(["+", "-", "*", "&", "|", "^"]),
    )
    def test_binops_match_python_semantics(self, a, b, op):
        """Property: simulated C arithmetic == wrapped Python arithmetic."""
        result = run_expr(f"a {op} b", f"int a = {a}; int b = {b};")
        python_ops = {
            "+": a + b, "-": a - b, "*": a * b,
            "&": a & b, "|": a | b, "^": a ^ b,
        }
        expected = to_signed(python_ops[op] & WORD)
        assert result == str(expected)


class TestFloatSemantics:
    def test_double_precision(self):
        assert run_expr("a / 3.0", "float a = 1.0;", "%.10f") == "0.3333333333"

    def test_float_int_mixing(self):
        assert run_expr("a + 1", "float a = 0.5;", "%.1f") == "1.5"

    def test_cast_truncates_toward_zero(self):
        assert run_expr("(int)a", "float a = -2.9;") == "-2"

    def test_math_builtins(self):
        assert run_expr("sqrt(a)", "float a = 2.25;", "%.1f") == "1.5"
        assert run_expr("fabs(a)", "float a = -3.5;", "%.1f") == "3.5"
        assert run_expr("floor(a)", "float a = 2.9;", "%.1f") == "2.0"

    def test_cos_of_infinity_is_nan(self):
        out = run_expr("cos(a / b)", "float a = 1.0; float b = 0.0;", "%f")
        assert out == "nan"

    def test_log_zero_is_minus_inf(self):
        out = run_expr("log(a)", "float a = 0.0;", "%f")
        assert out == "-inf"


class TestControlAndCalls:
    def test_recursion_factorial(self):
        source = """
        int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
        int main() { printf("%d", fact(10)); return 0; }
        """
        assert run_source(source).output == "3628800"

    def test_deep_recursion_grows_stack(self):
        source = """
        int depth(int n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
        int main() { printf("%d", depth(2000)); return 0; }
        """
        assert run_source(source).output == "2000"

    def test_mutual_recursion(self):
        source = """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
        int main() { printf("%d%d", is_even(10), is_odd(7)); return 0; }
        """
        # Forward declarations are not in the language: restructure.
        source = """
        int helper(int n, int odd) {
          if (n == 0) { return odd; }
          return helper(n - 1, 1 - odd);
        }
        int main() { printf("%d%d", helper(10, 0) == 0, helper(7, 0)); return 0; }
        """
        assert run_source(source).output == "11"

    def test_array_passed_by_reference(self):
        source = """
        void fill(int a[], int n) {
          int i;
          for (i = 0; i < n; i++) { a[i] = i * i; }
        }
        int t[5];
        int main() {
          fill(t, 5);
          printf("%d %d", t[2], t[4]);
          return 0;
        }
        """
        assert run_source(source).output == "4 16"

    def test_local_array_per_activation(self):
        source = """
        int sum_window(int seed) {
          int buf[4];
          int i;
          for (i = 0; i < 4; i++) { buf[i] = seed + i; }
          if (seed > 0) { return buf[0] + sum_window(seed - 1); }
          return buf[0];
        }
        int main() { printf("%d", sum_window(3)); return 0; }
        """
        assert run_source(source).output == "6"

    def test_instruction_budget_trap(self):
        source = "int main() { while (1) { } return 0; }"
        binary = compile_program(source).binary
        with pytest.raises(SimTrap, match="budget"):
            Simulator(binary, max_instructions=10_000).run()

    def test_printf_formats(self):
        source = (
            'int main() { printf("%d|%u|%x|%c|%5d|%.2f", -3, 4294967295u, '
            '255, 65, 42, 3.14159); return 0; }'
        )
        assert run_source(source).output == "-3|4294967295|ff|A|   42|3.14"


class TestTraceContents:
    def test_block_sequence_nonempty(self, fib_source):
        trace = run_source(fib_source)
        assert len(trace.block_seq) > 10

    def test_memory_accesses_match_mix(self, fib_source):
        trace = run_source(fib_source)
        mix = trace.instruction_mix()
        expected = mix.by_klass.get("load", 0) + mix.by_klass.get("store", 0)
        assert len(trace.mem_addrs) == expected

    def test_branch_log_matches_mix(self, fib_source):
        trace = run_source(fib_source)
        mix = trace.instruction_mix()
        assert len(trace.branch_log) == mix.by_klass.get("branch", 0)

    def test_no_trace_mode_skips_logs(self, fib_source):
        binary = compile_program(fib_source).binary
        trace = Simulator(binary).run(collect_trace=False)
        assert trace.block_seq == []
        assert trace.mem_addrs == []
        assert trace.output  # behaviour unchanged

    def test_mix_totals_equal_instruction_count(self, fib_source):
        trace = run_source(fib_source)
        assert trace.instruction_mix().total == trace.instructions


class TestLoadBounds:
    """Loads trap out-of-range addresses symmetrically with stores.

    Regression: a negative effective address used to read silently via
    Python negative indexing instead of raising SimTrap like stores do.
    Both engines must agree, message included.
    """

    READ = """
    int t[4];
    int peek(int i) { return t[i]; }
    int main() { printf("%d", peek(IDX)); return 0; }
    """
    WRITE = """
    int t[4];
    void poke(int i) { t[i] = 7; }
    int main() { poke(IDX); return 0; }
    """

    @pytest.mark.parametrize("engine", ["python", "fast"])
    @pytest.mark.parametrize("idx", [-2000000000, 2000000000])
    def test_out_of_range_load_traps(self, engine, idx, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_EXEC", engine)
        with pytest.raises(SimTrap, match="load out of range"):
            run_source(self.READ.replace("IDX", str(idx)))

    @pytest.mark.parametrize("engine", ["python", "fast"])
    @pytest.mark.parametrize("idx", [-2000000000, 2000000000])
    def test_out_of_range_store_traps(self, engine, idx, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_EXEC", engine)
        with pytest.raises(SimTrap, match="store out of range"):
            run_source(self.WRITE.replace("IDX", str(idx)))

    def test_trap_message_parity(self, monkeypatch):
        source = self.READ.replace("IDX", "-2000000000")
        messages = {}
        for engine in ("python", "fast"):
            monkeypatch.setenv("REPRO_SIM_EXEC", engine)
            with pytest.raises(SimTrap) as excinfo:
                run_source(source)
            messages[engine] = str(excinfo.value)
        assert messages["python"] == messages["fast"]
