"""Golden tests: every workload's simulated output equals its
independently-computed Python reference (small inputs, -O0 and -O2)."""

import pytest

from repro.cc.driver import compile_program
from repro.sim.functional import run_binary
from repro.workloads import WORKLOADS, all_pairs, workload_names


@pytest.mark.parametrize("name", workload_names())
def test_small_input_matches_reference_o0(name):
    workload = WORKLOADS[name]
    source = workload.source_for("small")
    expected = workload.expected_output("small")
    trace = run_binary(compile_program(source, "x86", 0).binary)
    assert trace.output == expected


@pytest.mark.parametrize("name", workload_names())
def test_small_input_matches_reference_o2_x86_64(name):
    workload = WORKLOADS[name]
    source = workload.source_for("small")
    expected = workload.expected_output("small")
    trace = run_binary(compile_program(source, "x86_64", 2).binary)
    assert trace.output == expected


@pytest.mark.parametrize("name", workload_names())
def test_small_input_matches_reference_o3_ia64(name):
    workload = WORKLOADS[name]
    source = workload.source_for("small")
    expected = workload.expected_output("small")
    trace = run_binary(compile_program(source, "ia64", 3).binary)
    assert trace.output == expected


class TestSuiteShape:
    def test_thirteen_workloads(self):
        assert len(workload_names()) == 13

    def test_mibench_names_present(self):
        expected = {
            "adpcm", "basicmath", "bitcount", "crc32", "dijkstra", "fft",
            "gsm", "jpeg", "patricia", "qsort", "sha", "stringsearch",
            "susan",
        }
        assert set(workload_names()) == expected

    def test_all_pairs_has_small_and_large(self):
        pairs = all_pairs()
        assert len(pairs) == 26
        assert ("sha", "large") in pairs

    def test_large_bigger_than_small(self):
        for name in ("crc32", "sha", "qsort"):
            workload = WORKLOADS[name]
            small = run_binary(
                compile_program(workload.source_for("small"), "x86", 0).binary
            )
            large = run_binary(
                compile_program(workload.source_for("large"), "x86", 0).binary
            )
            assert large.instructions > 2 * small.instructions

    def test_unknown_input_rejected(self):
        with pytest.raises(KeyError):
            WORKLOADS["sha"].source_for("gigantic")

    def test_fft_is_float_heavy(self):
        trace = run_binary(
            compile_program(WORKLOADS["fft"].source_for("small"), "x86", 0).binary
        )
        mix = trace.instruction_mix().by_klass
        float_ops = (
            mix.get("falu", 0) + mix.get("fmul", 0)
            + mix.get("fdiv", 0) + mix.get("fmath", 0)
        )
        assert float_ops / trace.instructions > 0.10

    def test_sha_is_alu_heavy(self):
        trace = run_binary(
            compile_program(WORKLOADS["sha"].source_for("small"), "x86", 0).binary
        )
        mix = trace.instruction_mix().by_klass
        assert mix.get("ialu", 0) / trace.instructions > 0.3
