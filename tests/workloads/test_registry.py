"""Registry behavior: prefix routing, suggestions, suite enumeration."""

import pytest

from repro.workloads import (
    WORKLOADS,
    UnknownWorkloadError,
    Workload,
    WorkloadProvider,
    all_pairs,
    get_workload,
    parse_pairs,
    providers,
    register_provider,
    workload_names,
)
from repro.workloads import registry as registry_module


class TestRouting:
    def test_bare_names_route_to_builtin_provider(self):
        assert get_workload("crc32") is WORKLOADS["crc32"]

    def test_synth_prefix_routes_to_synth_provider(self):
        name = "synth:s1-balanced-f256-d2-t8-e50-c2"
        workload = get_workload(name)
        assert workload.name == name
        assert workload.inputs == ("small", "large")

    def test_unknown_bare_name_suggests_close_matches(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            get_workload("dijkstr")
        assert excinfo.value.name == "dijkstr"
        assert "dijkstra" in excinfo.value.suggestions
        assert "did you mean" in str(excinfo.value)

    def test_unknown_prefix_names_the_missing_provider(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            get_workload("nope:whatever")
        assert "no provider registered for prefix 'nope'" in str(excinfo.value)

    def test_error_is_a_keyerror(self):
        # Legacy call sites catch KeyError; the refactor must not
        # change what they observe.
        with pytest.raises(KeyError):
            get_workload("missing")

    def test_bad_input_name_suggests_available_inputs(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            get_workload("crc32").source_for("huge")
        assert "crc32/small" in excinfo.value.suggestions


class TestEnumeration:
    def test_thirteen_builtin_names(self):
        assert len(workload_names()) == 13
        assert workload_names() == sorted(WORKLOADS)

    def test_all_pairs_derived_from_registry(self):
        pairs = all_pairs()
        assert len(pairs) == 26  # 13 workloads x (small, large)
        assert ("crc32", "small") in pairs
        assert ("susan", "large") in pairs

    def test_generative_provider_contributes_no_enumerable_names(self):
        assert "synth" in providers()
        assert providers()["synth"].names() == ()


class TestRegisterProvider:
    def test_duplicate_prefix_rejected_without_replace(self):
        class Dummy(WorkloadProvider):
            prefix = "synth"

        with pytest.raises(ValueError, match="already registered"):
            register_provider(Dummy())

    def test_third_party_prefix_roundtrips(self):
        stub = Workload(name="zz:one", source=lambda i: "int main(){}",
                        reference=lambda i: "", inputs=("small",))

        class ZZ(WorkloadProvider):
            prefix = "zz"

            def resolve(self, name):
                if name != "zz:one":
                    raise UnknownWorkloadError(name)
                return stub

            def names(self):
                return ("zz:one",)

        saved = dict(registry_module._PROVIDERS)
        try:
            register_provider(ZZ())
            assert get_workload("zz:one") is stub
            assert "zz:one" in workload_names()
            assert ("zz:one", "small") in all_pairs()
        finally:
            registry_module._PROVIDERS.clear()
            registry_module._PROVIDERS.update(saved)


class TestParsePairs:
    def test_empty_text_means_no_override(self):
        assert parse_pairs(None) is None
        assert parse_pairs("") is None

    def test_input_defaults_to_small(self):
        assert parse_pairs("crc32,sha/large") == \
            (("crc32", "small"), ("sha", "large"))

    def test_synth_names_resolve(self):
        name = "synth:s9-mem-f64-d1-t4-e10-c1"
        assert parse_pairs(f"{name}/large") == ((name, "large"),)

    def test_unknown_workload_raises_with_suggestions(self):
        with pytest.raises(UnknownWorkloadError, match="did you mean"):
            parse_pairs("qsortt/small")

    def test_unknown_input_raises(self):
        with pytest.raises(UnknownWorkloadError, match="no input 'huge'"):
            parse_pairs("crc32/huge")
