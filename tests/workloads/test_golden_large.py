"""Large-input golden tests for the cheaper workloads.

(The heavyweights — susan, jpeg, dijkstra — are exercised with their
large inputs by the benchmark harness instead.)
"""

import pytest

from repro.cc.driver import compile_program
from repro.sim.functional import run_binary
from repro.workloads import WORKLOADS

LARGE_FAST = ("adpcm", "basicmath", "crc32", "fft", "gsm", "patricia", "qsort")


@pytest.mark.parametrize("name", LARGE_FAST)
def test_large_input_matches_reference_o0(name):
    workload = WORKLOADS[name]
    trace = run_binary(
        compile_program(workload.source_for("large"), "x86", 0).binary
    )
    assert trace.output == workload.expected_output("large")


@pytest.mark.parametrize("name", ("crc32", "qsort"))
def test_large_input_matches_reference_o2(name):
    workload = WORKLOADS[name]
    trace = run_binary(
        compile_program(workload.source_for("large"), "x86_64", 2).binary
    )
    assert trace.output == workload.expected_output("large")
