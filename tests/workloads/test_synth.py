"""Synthetic workload generator: determinism, round-trips, oracles.

The three load-bearing properties of ``repro.workloads.synth``:

1. **Invertible names** — ``synth:<fingerprint>`` alone reconstructs
   the recipe (shard/process workers resolve against empty stores).
2. **Byte-determinism** — the same recipe generates byte-identical
   source (and hence ``pair_fingerprint``) in any process.
3. **Oracle equivalence** — the pure-Python reference evaluator and
   the compiled-then-simulated binary print the same checksum on every
   ISA and optimization level.
"""

import hashlib
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cc.driver import compile_program
from repro.engine.store import ArtifactStore
from repro.lang.parser import parse_program
from repro.lang.printer import format_program
from repro.sim.functional import run_binary
from repro.workloads import UnknownWorkloadError, get_workload
from repro.workloads.synth import (
    MIX_PRESETS,
    SynthRecipe,
    generate_source,
    persist_recipe,
    reference_output,
    stored_recipe,
)

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

recipes = st.builds(
    SynthRecipe,
    seed=st.integers(min_value=0, max_value=10**9),
    mix=st.sampled_from(sorted(MIX_PRESETS)),
    footprint=st.sampled_from([16, 64, 256, 4096, 65536]),
    depth=st.integers(min_value=1, max_value=3),
    trip=st.integers(min_value=2, max_value=256),
    entropy=st.integers(min_value=0, max_value=100),
    calls=st.integers(min_value=1, max_value=8),
)


class TestRecipe:
    def test_name_parse_roundtrip(self):
        recipe = SynthRecipe(seed=42, mix="mem", footprint=1024, depth=3,
                             trip=17, entropy=85, calls=5)
        assert recipe.name == "synth:s42-mem-f1024-d3-t17-e85-c5"
        assert SynthRecipe.parse(recipe.name) == recipe
        assert SynthRecipe.parse(recipe.fingerprint()) == recipe

    @given(recipes)
    @settings(max_examples=50, deadline=None)
    def test_every_valid_recipe_name_is_invertible(self, recipe):
        assert SynthRecipe.parse(recipe.name) == recipe
        assert SynthRecipe.from_params(recipe.params()) == recipe

    @pytest.mark.parametrize("name", [
        "synth:",
        "synth:s1",
        "synth:s1-balanced",
        "synth:s1-balanced-f256-d2-t8-e50",      # missing calls
        "synth:s1-nope-f256-d2-t8-e50-c2",       # unknown mix
        "synth:s1-balanced-f100-d2-t8-e50-c2",   # non-power-of-two
        "synth:s1-balanced-f256-d9-t8-e50-c2",   # depth out of range
    ])
    def test_malformed_names_raise_unknown_workload(self, name):
        with pytest.raises(UnknownWorkloadError):
            get_workload(name).source_for("small")

    def test_from_params_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown recipe field"):
            SynthRecipe.from_params({"seed": 1, "bogus": 2})

    @pytest.mark.parametrize("field,value", [
        ("seed", -1), ("mix", "nope"), ("footprint", 7), ("depth", 0),
        ("trip", 1), ("entropy", 101), ("calls", 9),
    ])
    def test_validation_rejects_out_of_range(self, field, value):
        params = SynthRecipe().params()
        params[field] = value
        with pytest.raises(ValueError):
            SynthRecipe(**params)


class TestDeterminism:
    def test_same_recipe_same_source(self):
        recipe = SynthRecipe(seed=7, mix="int")
        assert generate_source(recipe, "small") == \
            generate_source(recipe, "small")

    def test_different_seeds_differ(self):
        a = generate_source(SynthRecipe(seed=1), "small")
        b = generate_source(SynthRecipe(seed=2), "small")
        assert a != b

    def test_inputs_scale_but_share_structure(self):
        recipe = SynthRecipe(seed=3, trip=4)
        small = generate_source(recipe, "small")
        large = generate_source(recipe, "large")
        assert small != large  # outer trip count scales

    def test_byte_identical_across_processes(self):
        """A fresh interpreter regenerates the same bytes and the same
        pair_fingerprint from the name alone — the property shard
        workers with private stores rely on."""
        recipe = SynthRecipe(seed=11, mix="branchy", trip=4)
        source = generate_source(recipe, "small")
        local_digest = hashlib.sha256(source.encode()).hexdigest()

        script = (
            "import hashlib\n"
            "from repro.workloads import get_workload\n"
            "from repro.engine.tasks import pair_fingerprint\n"
            f"src = get_workload({recipe.name!r}).source_for('small')\n"
            "print(hashlib.sha256(src.encode()).hexdigest())\n"
            f"print(pair_fingerprint({recipe.name!r}, 'small'))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True, env={"PYTHONPATH": str(SRC_DIR)},
        ).stdout.split()
        from repro.engine.tasks import pair_fingerprint

        assert out[0] == local_digest
        assert out[1] == pair_fingerprint(recipe.name, "small")


class TestRoundTrip:
    @given(recipes)
    @settings(max_examples=15, deadline=None)
    def test_printer_parser_fixed_point(self, recipe):
        source = generate_source(recipe, "small")
        assert format_program(parse_program(source)) == source


# Deliberately diverse: every mix, both float and pure-int paths,
# depth/trip/entropy extremes — small enough to simulate quickly.
ORACLE_RECIPES = [
    SynthRecipe(seed=1),
    SynthRecipe(seed=2, mix="int", depth=1, trip=3, entropy=0),
    SynthRecipe(seed=3, mix="float", footprint=16, calls=1),
    SynthRecipe(seed=4, mix="mem", footprint=4096, depth=3, trip=2),
    SynthRecipe(seed=5, mix="branchy", entropy=100, calls=4),
]


@pytest.mark.parametrize("recipe", ORACLE_RECIPES,
                         ids=lambda r: r.fingerprint())
class TestOracle:
    def test_compiled_output_matches_evaluator_o0_x86(self, recipe):
        source = generate_source(recipe, "small")
        expected = reference_output(recipe, "small")
        trace = run_binary(compile_program(source, "x86", 0).binary)
        assert trace.output == expected

    def test_compiled_output_matches_evaluator_o2_x86_64(self, recipe):
        source = generate_source(recipe, "small")
        expected = reference_output(recipe, "small")
        trace = run_binary(compile_program(source, "x86_64", 2).binary)
        assert trace.output == expected


class TestWorkloadInterface:
    def test_registry_resolution_matches_direct_generation(self):
        recipe = SynthRecipe(seed=6, mix="mem")
        workload = get_workload(recipe.name)
        assert workload.source_for("small") == \
            generate_source(recipe, "small")
        assert workload.expected_output("small") == \
            reference_output(recipe, "small")

    def test_recipe_persistence_roundtrip(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        recipe = SynthRecipe(seed=8, mix="float")
        persist_recipe(store, recipe)
        assert stored_recipe(store, recipe.fingerprint()) == recipe
        assert stored_recipe(store, "s1-int-f16-d1-t2-e0-c1") is None
