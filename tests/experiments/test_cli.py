"""CLI surface: ``python -m repro.experiments`` flags and figure registry."""

import pytest

from repro.experiments.__main__ import main
from repro.experiments.report import (
    DEFAULT_FIGURES,
    FIGURES,
    generate_report,
    resolve_figures,
)
from repro.experiments.runner import ExperimentRunner

PAIRS_FIGURE = "fig04"


class TestFigureRegistry:
    def test_registry_covers_the_report(self):
        assert set(DEFAULT_FIGURES) == set(FIGURES)
        for name in ("fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
                     "fig10", "fig11", "obfuscation", "ablation"):
            assert name in FIGURES

    def test_resolve_defaults_to_everything(self):
        assert resolve_figures(None) == DEFAULT_FIGURES
        assert resolve_figures([]) == DEFAULT_FIGURES

    def test_resolve_preserves_report_order(self):
        assert resolve_figures(["fig07", "fig04"]) == ("fig04", "fig07")

    def test_resolve_rejects_unknown(self):
        with pytest.raises(KeyError, match="fig99"):
            resolve_figures(["fig99"])


class TestGenerateReport:
    def test_single_figure_section(self, tmp_path):
        report = generate_report(ExperimentRunner(), figures=["fig04"])
        assert "Fig. 4" in report
        assert "Fig. 5" not in report
        assert "artifact cache:" in report


class TestMainCli:
    def test_figures_and_stats_flags(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        assert main(["--figures", "fig04", "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "Fig. 4" in out
        assert "misses" in err

        # Warm rerun replays everything from the store.
        assert main(["--figures", "fig04", "--stats"]) == 0
        _, err = capsys.readouterr()
        assert " 0 misses" in err

    def test_workers_flag_matches_serial_output(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        assert main(["--figures", "fig04"]) == 0
        serial = capsys.readouterr().out

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        assert main(["--figures", "fig04", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out

        strip = lambda text: [line for line in text.splitlines()
                              if "wall clock" not in line]
        assert strip(parallel) == strip(serial)

    def test_no_cache_flag(self, capsys):
        assert main(["--figures", "fig04", "--no-cache", "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "Fig. 4" in out
        assert "0 hits, 0 misses" in err

    def test_unknown_figure_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["--figures", "nope"])
        assert "unknown figures" in capsys.readouterr().err
