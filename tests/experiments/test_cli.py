"""CLI surface: ``python -m repro.experiments`` flags and figure registry."""

import pytest

from repro.experiments.__main__ import main
from repro.experiments.report import (
    DEFAULT_FIGURES,
    FIGURES,
    generate_report,
    resolve_figures,
)
from repro.experiments.runner import ExperimentRunner

PAIRS_FIGURE = "fig04"


class TestFigureRegistry:
    def test_registry_covers_the_report(self):
        assert set(DEFAULT_FIGURES) == set(FIGURES)
        for name in ("fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
                     "fig10", "fig11", "explore", "history", "search",
                     "obfuscation", "ablation"):
            assert name in FIGURES

    def test_explore_section_covers_the_full_suite(self):
        from repro.experiments.runner import FULL_PAIRS

        assert FIGURES["explore"].pairs == FULL_PAIRS

    def test_resolve_defaults_to_everything(self):
        assert resolve_figures(None) == DEFAULT_FIGURES
        assert resolve_figures([]) == DEFAULT_FIGURES

    def test_resolve_preserves_report_order(self):
        assert resolve_figures(["fig07", "fig04"]) == ("fig04", "fig07")

    def test_resolve_rejects_unknown(self):
        with pytest.raises(KeyError, match="fig99"):
            resolve_figures(["fig99"])


class TestGenerateReport:
    def test_single_figure_section(self, tmp_path):
        report = generate_report(ExperimentRunner(), figures=["fig04"])
        assert "Fig. 4" in report
        assert "Fig. 5" not in report
        assert "artifact cache:" in report


class TestHistorySection:
    def _record(self, key, sweep, score, toolchain, created_at):
        from repro.explore.db import ResultRecord

        return ResultRecord(
            key=key, sweep=sweep, created_at=created_at,
            point={"isa": "x86", "opt_level": 0},
            metrics={"cpi_err": score}, score=score, toolchain=toolchain,
        )

    def test_history_renders_per_toolchain_best(self, tmp_path,
                                                monkeypatch):
        from repro.engine.store import toolchain_fingerprint
        from repro.explore.db import ResultsDB

        db_path = tmp_path / "history.sqlite3"
        monkeypatch.setenv("REPRO_RESULTS_DB", str(db_path))
        live = toolchain_fingerprint()
        with ResultsDB(db_path) as db:
            db.put(self._record("k1", "smoke", 0.05, live, 100.0))
            db.put(self._record("k2", "smoke", 0.03, live, 200.0))
            db.put(self._record("k3", "isa-opt", 0.20, "f" * 64, 50.0))

        report = generate_report(ExperimentRunner(), figures=["history"])
        assert "Sweep history" in report
        assert "smoke" in report and "isa-opt" in report
        # The live toolchain is starred and listed before foreign ones.
        assert f"{live[:12]}*" in report
        assert report.index(live[:12]) < report.index("f" * 12)
        # Best score per (toolchain, sweep), not the latest one.
        assert "0.030" in report

    def test_history_empty_db(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DB",
                           str(tmp_path / "empty.sqlite3"))
        report = generate_report(ExperimentRunner(), figures=["history"])
        assert "no stored sweep results yet" in report


class TestSearchTraceSection:
    def _record(self, key, sweep, score, created_at, pairs=None):
        from repro.explore.db import ResultRecord

        metrics = {"cpi_err": score}
        if pairs is not None:
            metrics["pairs_scored"] = pairs
        return ResultRecord(
            key=key, sweep=sweep, created_at=created_at,
            point={"isa": "x86", "opt_level": 0},
            metrics=metrics, score=score, toolchain="tc",
        )

    def test_search_trace_renders_round_trend(self, tmp_path,
                                              monkeypatch):
        from repro.explore.db import ResultsDB

        db_path = tmp_path / "trace.sqlite3"
        monkeypatch.setenv("REPRO_RESULTS_DB", str(db_path))
        with ResultsDB(db_path) as db:
            db.put(self._record("k1", "smoke-hill-s0/round-0", 0.5, 1.0))
            db.put(self._record("k2", "smoke-hill-s0/round-1", 0.2, 2.0))
            db.put(self._record("k3", "plain-sweep", 0.9, 3.0))

        report = generate_report(ExperimentRunner(), figures=["search"])
        assert "Search trace" in report
        assert "smoke-hill-s0" in report
        # Ordinary sweeps don't show up as searches.
        assert "plain-sweep" not in report
        # best-so-far trend: round 1 improves on round 0.
        assert "0.500" in report and "0.200" in report

    def test_reduced_scope_rounds_stay_out_of_best_so_far(
            self, tmp_path, monkeypatch):
        from repro.explore.db import ResultsDB

        db_path = tmp_path / "scoped.sqlite3"
        monkeypatch.setenv("REPRO_RESULTS_DB", str(db_path))
        with ResultsDB(db_path) as db:
            # Halving cohort screened on one pair: artificially low
            # score that must not pin the full-scope trend.
            db.put(self._record("c", "m-halving-s0/round-0", 0.01, 1.0,
                                pairs=1))
            db.put(self._record("p", "m-halving-s0/round-1", 0.30, 2.0,
                                pairs=5))

        report = generate_report(ExperimentRunner(), figures=["search"])
        lines = [line for line in report.splitlines()
                 if line.startswith("m-halving-s0")]
        assert len(lines) == 2
        # Round 0 shows its own best but best-so-far is undefined (nan)
        # until a full-scope round lands.
        assert "0.010" in lines[0] and "nan" in lines[0]
        assert lines[1].count("0.300") == 2  # round best == best so far

    def test_search_trace_empty_db(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DB",
                           str(tmp_path / "empty.sqlite3"))
        report = generate_report(ExperimentRunner(), figures=["search"])
        assert "no stored search rounds yet" in report


class TestMainCli:
    def test_figures_and_stats_flags(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
        assert main(["--figures", "fig04", "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "Fig. 4" in out
        assert "misses" in err

        # Warm rerun replays everything from the store.
        assert main(["--figures", "fig04", "--stats"]) == 0
        _, err = capsys.readouterr()
        assert " 0 misses" in err

    def test_workers_flag_matches_serial_output(self, tmp_path, capsys,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        assert main(["--figures", "fig04"]) == 0
        serial = capsys.readouterr().out

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        assert main(["--figures", "fig04", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out

        strip = lambda text: [line for line in text.splitlines()
                              if "wall clock" not in line]
        assert strip(parallel) == strip(serial)

    def test_no_cache_flag(self, capsys):
        assert main(["--figures", "fig04", "--no-cache", "--stats"]) == 0
        out, err = capsys.readouterr()
        assert "Fig. 4" in out
        assert "0 hits, 0 misses" in err

    def test_unknown_figure_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["--figures", "nope"])
        assert "unknown figures" in capsys.readouterr().err


class TestPairsOverride:
    SYNTH = "synth:s5-int-f64-d1-t3-e20-c1"

    def test_generate_report_with_pairs_override(self):
        report = generate_report(
            ExperimentRunner(), figures=["fig04"],
            pairs=((self.SYNTH, "small"),))
        assert self.SYNTH in report
        assert "crc32" not in report

    def test_pure_db_sections_ignore_the_override(self):
        # history reads the results DB; an override must not break it.
        report = generate_report(
            ExperimentRunner(), figures=["history"],
            pairs=((self.SYNTH, "small"),))
        assert "Sweep history" in report

    def test_cli_pairs_flag(self, capsys):
        assert main(["--figures", "fig04",
                     "--pairs", f"{self.SYNTH}/small"]) == 0
        assert self.SYNTH in capsys.readouterr().out

    def test_cli_rejects_unknown_pairs_as_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--figures", "fig04", "--pairs", "crc33/small"])
        assert exc_info.value.code == 2
        assert "did you mean" in capsys.readouterr().err

    def test_cli_rejects_malformed_synth_fingerprint(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--figures", "fig04", "--pairs", "synth:bogus"])
        assert exc_info.value.code == 2
        assert "synth names look like" in capsys.readouterr().err
