"""Smoke tests for the experiment harness (full runs live in benchmarks/)."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    run_ablation,
    run_cache_figure,
    run_fig04,
    run_fig05,
    run_fig06,
    run_fig09,
    run_fig10,
    run_obfuscation,
)
from repro.experiments.runner import format_table

PAIRS = (("crc32", "small"), ("adpcm", "small"))


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestRunnerCaching:
    def test_traces_memoized(self, runner):
        first = runner.original_trace("crc32", "small")
        second = runner.original_trace("crc32", "small")
        assert first is second

    def test_profiles_memoized(self, runner):
        assert runner.profile("crc32", "small") is runner.profile("crc32", "small")

    def test_clone_cached(self, runner):
        assert runner.clone("crc32", "small") is runner.clone("crc32", "small")


class TestFigureSmoke:
    def test_fig04(self, runner):
        result = run_fig04(runner, PAIRS)
        assert len(result.rows) == 2
        assert result.average_reduction > 1
        assert "Fig. 4" in result.format_table()

    def test_fig05(self, runner):
        result = run_fig05(runner, PAIRS)
        assert result.original[0] == 1.0
        assert 0 < result.synthetic[2] <= 1.2

    def test_fig06(self, runner):
        result = run_fig06(runner, PAIRS, levels=(0,))
        assert len(result.rows) == 4  # 2 pairs x ORG/SYN
        for row in result.rows:
            assert abs(sum(row["mix"].values()) - 1.0) < 1e-9

    def test_fig07(self, runner):
        result = run_cache_figure(runner, PAIRS, opt_level=0)
        series = result.series("crc32", "small", "ORG")
        assert set(series) == {k * 1024 for k in (1, 2, 4, 8, 16, 32)}

    def test_fig09(self, runner):
        result = run_fig09(runner, PAIRS, levels=(0,))
        for row in result.rows:
            assert 0.5 < row["accuracy"] <= 1.0

    def test_fig10(self, runner):
        result = run_fig10(runner, PAIRS[:1])
        assert result.rows
        for row in result.rows:
            for cpi in row["cpi"].values():
                assert 0.3 < cpi < 10

    def test_obfuscation(self, runner):
        result = run_obfuscation(runner, PAIRS)
        assert not result.any_flagged

    def test_ablation(self, runner):
        result = run_ablation(runner, PAIRS[:1])
        assert result.rows
        assert "SFGL" in result.format_table()


class TestFormatTable:
    def test_renders_floats_and_strings(self):
        text = format_table(["a", "b"], [["x", 1.23456], ["yy", 2]], "T")
        assert "T" in text
        assert "1.235" in text
        assert "yy" in text
