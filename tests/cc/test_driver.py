"""Compiler driver tests."""

import pytest

from repro.cc.driver import compile_program, compile_to_ir
from repro.isa.targets import X86, X86_64
from tests.conftest import run_source


class TestDriver:
    def test_accepts_isa_by_name_or_object(self, fib_source):
        by_name = compile_program(fib_source, "x86", 0)
        by_object = compile_program(fib_source, X86, 0)
        assert by_name.binary.isa_name == by_object.binary.isa_name == "x86"

    def test_rejects_bad_level(self, fib_source):
        with pytest.raises(ValueError):
            compile_program(fib_source, "x86", 5)

    def test_result_carries_artifacts(self, fib_source):
        result = compile_program(fib_source, "x86_64", 2)
        assert result.binary is not None
        assert result.ir.functions
        assert result.ast.functions
        assert isinstance(result.opt_stats, dict)

    def test_opt_stats_populated_at_o2(self, loopy_source):
        result = compile_program(loopy_source, "x86_64", 2)
        assert result.opt_stats.get("dce", 0) >= 0
        assert "fold" in result.opt_stats

    def test_o0_runs_no_passes(self, loopy_source):
        result = compile_program(loopy_source, "x86_64", 0)
        assert result.opt_stats == {}

    def test_compile_to_ir_standalone(self, fib_source):
        program, ir, stats = compile_to_ir(fib_source, opt_level=1)
        assert "fib" in ir.functions

    def test_binary_records_level_and_isa(self, fib_source):
        result = compile_program(fib_source, "ia64", 3)
        assert result.binary.opt_level == 3
        assert result.binary.isa_name == "ia64"


class TestOptimizationLevels:
    """Each level must preserve semantics and never regress much."""

    PROGRAM = """
    int table[128];
    int f(int x) { return x * x + 1; }
    int main() {
      int i;
      int total = 0;
      for (i = 0; i < 128; i++) {
        table[i] = f(i) & 1023;
      }
      for (i = 0; i < 128; i++) {
        total = total + table[i];
        if (table[i] > 900) { total = total - 900; }
      }
      printf("%d", total);
      return 0;
    }
    """

    def test_all_levels_agree(self):
        outputs = {
            run_source(self.PROGRAM, isa=isa, opt_level=level).output
            for isa in ("x86", "x86_64", "ia64")
            for level in (0, 1, 2, 3)
        }
        assert len(outputs) == 1

    def test_levels_monotone_enough(self):
        counts = [
            run_source(self.PROGRAM, isa="x86_64", opt_level=level).instructions
            for level in (0, 1, 2, 3)
        ]
        assert counts[1] < counts[0]
        assert counts[2] <= counts[1] * 1.10
        assert counts[3] <= counts[2] * 1.10
