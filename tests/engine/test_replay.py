"""Replay-stage equivalence suite.

The engine's ``replay`` stage must be a pure relocation of
``Machine.simulate``: byte-identical ``TimingResult`` pickles whether
the replay ran inline, on a thread/process pool, in a shard subprocess,
or through the cost-routed ``auto`` composite — and its content-address
must be computable before execution, from the machine fingerprint
alone.
"""

import pickle

import pytest

from repro.engine.api import Engine
from repro.engine.store import ArtifactStore
from repro.engine.tasks import (
    STAGE_REPLAY,
    key_fields,
    replay_task,
)
from repro.sim.machines import spec_from_axes

PAIR = ("crc32", "small")
ISA = "x86"
SPEC = spec_from_axes(isa=ISA, width=2, rob=64, l1_kb=8)

BACKENDS = ("inline", "thread", "process", "shard", "auto")


@pytest.fixture(scope="module")
def seed_root(tmp_path_factory):
    """A store holding the compile/run artifacts replays depend on."""
    root = tmp_path_factory.mktemp("replay-seed")
    engine = Engine(store=ArtifactStore(root=root))
    engine.warm([PAIR], coords=((ISA, 0),), sides=("org",))
    return root


@pytest.fixture(scope="module")
def direct_digest(seed_root):
    """Reference result: the machine simulating the trace in-process."""
    engine = Engine(store=ArtifactStore(root=seed_root))
    trace = engine.original_trace(*PAIR, ISA, 0)
    return pickle.dumps(SPEC.build().simulate(trace))


class TestEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engine_replay_matches_direct_simulation(
            self, backend, seed_root, direct_digest, tmp_path):
        # Fresh store seeded with only the upstream compile/run, so the
        # replay node itself executes on the backend under test.
        store = ArtifactStore(root=tmp_path / "store")
        store.import_keys(seed_root)
        store.stats.reset()
        engine = Engine(store=store, workers=2, backend=backend)
        engine.warm([PAIR], coords=(), sides=("org",),
                    machine_points=[(SPEC, 0)])
        result = engine.replay_timing(*PAIR, SPEC, 0, side="org")
        assert pickle.dumps(result) == direct_digest

    def test_syn_side_replay_matches_direct_simulation(self, seed_root):
        engine = Engine(store=ArtifactStore(root=seed_root))
        result = engine.replay_timing(*PAIR, SPEC, 0, side="syn")
        trace = engine.synthetic_trace(*PAIR, ISA, 0)
        assert pickle.dumps(result) == \
            pickle.dumps(SPEC.build().simulate(trace))

    def test_warm_replay_is_one_store_read(self, seed_root, direct_digest):
        engine = Engine(store=ArtifactStore(root=seed_root))
        engine.replay_timing(*PAIR, SPEC, 0, side="org")  # populate

        rewarmed = Engine(store=ArtifactStore(root=seed_root))
        result = rewarmed.replay_timing(*PAIR, SPEC, 0, side="org")
        # The terminal probe hits; nothing upstream is even looked at.
        assert rewarmed.stats.hits == 1
        assert rewarmed.stats.misses == 0 and rewarmed.stats.puts == 0
        assert pickle.dumps(result) == direct_digest


class TestReplayKeys:
    def test_key_computable_before_execution(self):
        # key_fields never needs the trace (or any dep) in hand.
        task = replay_task(*PAIR, 0, SPEC, side="org")
        fields = key_fields(task)
        assert fields["machine"] == SPEC.fingerprint()
        assert fields["side"] == "org"
        assert task.stage == STAGE_REPLAY
        assert task.deps == (f"run:crc32/small@{ISA}-O0",)

    def test_syn_key_includes_clone_size(self):
        task = replay_task(*PAIR, 2, SPEC, side="syn",
                           target_instructions=9000)
        fields = key_fields(task)
        assert fields["target_instructions"] == 9000
        assert task.deps == (f"run-clone:crc32/small@{ISA}-O2#9000",)

    def test_distinct_machines_get_distinct_keys_and_ids(self):
        other = spec_from_axes(isa=ISA, width=4, rob=64, l1_kb=8)
        a = replay_task(*PAIR, 0, SPEC, side="org")
        b = replay_task(*PAIR, 0, other, side="org")
        assert a.id != b.id
        assert key_fields(a)["machine"] != key_fields(b)["machine"]

    def test_frequency_does_not_change_the_key(self):
        # The clock scales cycles to seconds outside the cycle model,
        # so specs differing only in clock share one replay artifact.
        fast = spec_from_axes(isa=ISA, width=2, rob=64, l1_kb=8,
                              frequency_ghz=4.0)
        assert key_fields(replay_task(*PAIR, 0, fast, side="org")) == \
            key_fields(replay_task(*PAIR, 0, SPEC, side="org"))

    def test_side_validation(self):
        with pytest.raises(ValueError, match="side"):
            replay_task(*PAIR, 0, SPEC, side="weird")
        with pytest.raises(ValueError, match="target_instructions"):
            replay_task(*PAIR, 0, SPEC, side="syn")
