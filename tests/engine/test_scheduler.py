"""Scheduler: topological ordering, diamond DAGs, pool fan-out, caching."""

import pytest

from repro.engine.scheduler import GraphError, run_graph, topological_order
from repro.engine.store import ArtifactStore
from repro.engine.tasks import Task


def _graph(*tasks: Task) -> dict[str, Task]:
    return {task.id: task for task in tasks}


# Module-level so the multiprocessing pool can pickle them by reference.
def arith_runner(task: Task, deps: dict) -> int:
    base = task.payload.get("value", 0)
    return base + sum(deps.values())


def arith_keyer(task: Task) -> dict:
    return {"value": task.payload.get("value", 0), "deps": sorted(task.deps)}


DIAMOND = _graph(
    Task(id="top", stage="n", payload={"value": 1}),
    Task(id="left", stage="n", payload={"value": 10}, deps=("top",)),
    Task(id="right", stage="n", payload={"value": 100}, deps=("top",)),
    Task(id="bottom", stage="n", payload={"value": 1000},
         deps=("left", "right")),
)


class TestTopologicalOrder:
    def test_diamond_ordering(self):
        order = [task.id for task in topological_order(DIAMOND)]
        assert order.index("top") < order.index("left")
        assert order.index("top") < order.index("right")
        assert order.index("left") < order.index("bottom")
        assert order.index("right") < order.index("bottom")
        # Sorted tie-breaking makes the order fully deterministic.
        assert order == ["top", "left", "right", "bottom"]

    def test_cycle_detected(self):
        cyclic = _graph(
            Task(id="a", stage="n", deps=("b",)),
            Task(id="b", stage="n", deps=("a",)),
        )
        with pytest.raises(GraphError, match="cycle"):
            topological_order(cyclic)

    def test_unknown_dependency(self):
        dangling = _graph(Task(id="a", stage="n", deps=("ghost",)))
        with pytest.raises(GraphError, match="unknown task"):
            topological_order(dangling)


class TestInlineExecution:
    def test_diamond_values(self):
        results = run_graph(DIAMOND, workers=1, runner=arith_runner,
                            keyer=arith_keyer)
        assert results["top"] == 1
        assert results["left"] == 11
        assert results["right"] == 101
        assert results["bottom"] == 1112

    def test_preloaded_nodes_not_recomputed(self):
        results = run_graph(DIAMOND, workers=1, runner=arith_runner,
                            keyer=arith_keyer, preloaded={"top": 5})
        assert results["top"] == 5
        assert results["left"] == 15 and results["right"] == 105
        assert results["bottom"] == 1000 + 15 + 105

    def test_store_hit_skips_execution(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        first = run_graph(DIAMOND, workers=1, store=store,
                          runner=arith_runner, keyer=arith_keyer)
        assert store.stats.misses == 4 and store.stats.puts == 4
        store.stats.reset()
        second = run_graph(DIAMOND, workers=1, store=store,
                           runner=arith_runner, keyer=arith_keyer)
        assert second == first
        assert store.stats.hits == 4 and store.stats.misses == 0


class TestParallelExecution:
    def test_diamond_matches_inline(self):
        inline = run_graph(DIAMOND, workers=1, runner=arith_runner,
                           keyer=arith_keyer)
        pooled = run_graph(DIAMOND, workers=2, runner=arith_runner,
                           keyer=arith_keyer)
        assert pooled == inline

    def test_workers_persist_to_store(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        run_graph(DIAMOND, workers=2, store=store, runner=arith_runner,
                  keyer=arith_keyer)
        assert store.stats.misses == 4 and store.stats.puts == 4
        # A later serial run replays entirely from disk.
        store.stats.reset()
        replay = run_graph(DIAMOND, workers=1, store=store,
                           runner=arith_runner, keyer=arith_keyer)
        assert replay["bottom"] == 1112
        assert store.stats.hits == 4 and store.stats.misses == 0

    def test_wide_fanout(self):
        tasks = [Task(id="root", stage="n", payload={"value": 1})]
        for i in range(12):
            tasks.append(Task(id=f"leaf{i:02d}", stage="n",
                              payload={"value": i}, deps=("root",)))
        graph = _graph(*tasks)
        results = run_graph(graph, workers=3, runner=arith_runner,
                            keyer=arith_keyer)
        for i in range(12):
            assert results[f"leaf{i:02d}"] == i + 1

    def test_worker_exception_propagates(self):
        graph = _graph(Task(id="a", stage="n"), Task(id="b", stage="n"))
        with pytest.raises(RuntimeError, match="stage failed"):
            run_graph(graph, workers=2, runner=_raise)


def _raise(task, deps):
    raise RuntimeError("stage failed")


class TestTiming:
    def test_on_timing_fires_per_executed_node(self):
        observed = []
        run_graph(DIAMOND, workers=1, runner=arith_runner,
                  keyer=arith_keyer,
                  on_timing=lambda stage, s: observed.append((stage, s)))
        assert len(observed) == 4
        assert all(stage == "n" and seconds >= 0
                   for stage, seconds in observed)

    def test_cache_hits_are_never_timed(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        run_graph(DIAMOND, workers=1, store=store, runner=arith_runner,
                  keyer=arith_keyer)
        observed = []
        run_graph(DIAMOND, workers=1, store=store, runner=arith_runner,
                  keyer=arith_keyer,
                  on_timing=lambda stage, s: observed.append(stage))
        assert observed == []

    def test_sidecars_carry_seconds(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        run_graph(DIAMOND, workers=1, store=store, runner=arith_runner,
                  keyer=arith_keyer)
        per_stage = store.by_stage()
        assert per_stage["n"]["entries"] == 4
        assert per_stage["n"]["mean_seconds"] is not None
        assert per_stage["n"]["mean_seconds"] >= 0

    def test_pooled_workers_time_too(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        observed = []
        run_graph(DIAMOND, workers=2, store=store, runner=arith_runner,
                  keyer=arith_keyer,
                  on_timing=lambda stage, s: observed.append(stage))
        assert observed == ["n"] * 4
        assert store.by_stage()["n"]["mean_seconds"] is not None


class TestDrain:
    def test_stop_before_start_resolves_nothing(self):
        results = run_graph(DIAMOND, workers=1, runner=arith_runner,
                            keyer=arith_keyer, stop=lambda: True)
        assert results == {}

    def test_stop_midway_keeps_finished_prefix(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        done = []

        def stop() -> bool:
            return len(done) >= 1

        def runner(task, deps):
            value = arith_runner(task, deps)
            done.append(task.id)
            return value

        results = run_graph(DIAMOND, workers=1, store=store,
                            runner=runner, keyer=arith_keyer, stop=stop)
        # Only the first dispatched node ran; its artifact persisted.
        assert list(results) == ["top"]
        assert store.stats.puts == 1

    def test_drained_prefix_resumes_from_store(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        done = []
        results = run_graph(
            DIAMOND, workers=1, store=store,
            runner=lambda t, d: (done.append(t.id),
                                 arith_runner(t, d))[1],
            keyer=arith_keyer, stop=lambda: len(done) >= 2)
        assert len(results) == 2
        # Re-run without the stop: the drained prefix is all hits.
        store.stats.reset()
        full = run_graph(DIAMOND, workers=1, store=store,
                         runner=arith_runner, keyer=arith_keyer)
        assert full["bottom"] == 1112
        assert store.stats.hits == 2 and store.stats.misses == 2
