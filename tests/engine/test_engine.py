"""Engine facade: memoization, persistence, invalidation, equivalence.

The equivalence tests are the subsystem's contract: figure results must
be bit-identical serial vs parallel and cold vs warm cache.
"""

from repro.engine.api import Engine
from repro.engine.store import ArtifactStore
from repro.experiments.fig04_reduction import run_fig04
from repro.experiments.runner import ExperimentRunner

PAIRS = (("crc32", "small"), ("adpcm", "small"))


def make_engine(tmp_path, name="store", **kwargs) -> Engine:
    return Engine(cache_dir=tmp_path / name, **kwargs)


class TestMemoAndStore:
    def test_same_object_within_engine(self, tmp_path):
        engine = make_engine(tmp_path)
        assert engine.original_trace("crc32", "small") is \
            engine.original_trace("crc32", "small")
        assert engine.profile("crc32", "small") is \
            engine.profile("crc32", "small")
        assert engine.clone("crc32", "small") is \
            engine.clone("crc32", "small")

    def test_artifacts_persist_across_engines(self, tmp_path):
        first = make_engine(tmp_path)
        trace = first.original_trace("crc32", "small")
        assert first.stats.misses > 0

        second = make_engine(tmp_path)
        replay = second.original_trace("crc32", "small")
        # Terminal-first probing: one unpickle serves the hit; the
        # upstream compile result is never touched.
        assert second.stats.misses == 0 and second.stats.hits == 1
        assert replay.instructions == trace.instructions

    def test_warm_terminal_short_circuits(self, tmp_path):
        make_engine(tmp_path).synthetic_trace("crc32", "small")

        fresh = make_engine(tmp_path)
        fresh.synthetic_trace("crc32", "small")
        # Fully warm: only the terminal run-clone artifact is loaded —
        # no upstream compile/trace/profile/clone unpickling.
        assert fresh.stats.as_dict() == {
            "hits": 1, "misses": 0, "puts": 0, "evictions": 0,
        }

    def test_cache_disabled(self, tmp_path):
        engine = Engine(use_cache=False)
        trace = engine.original_trace("crc32", "small")
        assert trace.instructions > 0
        assert engine.store is None
        assert engine.stats.hits == engine.stats.misses == 0

    def test_target_change_invalidates_synthetic_side_only(self, tmp_path):
        small = make_engine(tmp_path, target_instructions=10_000)
        small.synthetic_trace("crc32", "small")
        assert small.stats.misses == 6  # every stage computed once

        bigger = make_engine(tmp_path, target_instructions=12_000)
        bigger.synthetic_trace("crc32", "small")
        # Backward probing stops at the cached profile (1 hit); only
        # synthesize and the clone compile/run re-run under the new
        # target — the reference compile/run are never even loaded.
        assert bigger.stats.misses == 3
        assert bigger.stats.hits == 1


class TestEquivalence:
    def _fig04_artifacts(self, engine):
        """The figure table plus upstream artifacts in comparable form:
        flat profile fields (the SFGL itself is a cyclic graph, so no
        deep ==) and the clone C text, which pins the whole synthetic
        derivation bit for bit."""
        runner = ExperimentRunner(engine=engine)
        result = run_fig04(runner, PAIRS)
        profiles = [
            (p.total_instructions, p.mix, p.source_name)
            for p in (runner.profile(w, i) for w, i in PAIRS)
        ]
        clone_sources = [runner.clone(w, i).source for w, i in PAIRS]
        return result.format_table(), profiles, clone_sources

    def test_cold_vs_warm_bit_identical(self, tmp_path):
        cold = self._fig04_artifacts(make_engine(tmp_path))

        warm_engine = make_engine(tmp_path)
        warm = self._fig04_artifacts(warm_engine)
        assert warm == cold
        assert warm_engine.stats.misses == 0

    def test_serial_vs_parallel_bit_identical(self, tmp_path):
        serial = self._fig04_artifacts(
            make_engine(tmp_path, "serial", workers=1))

        parallel_engine = make_engine(tmp_path, "parallel", workers=4)
        parallel_engine.warm(PAIRS, (("x86", 0),))
        parallel = self._fig04_artifacts(parallel_engine)
        assert parallel == serial

    def test_warm_leaves_nothing_to_compute(self, tmp_path):
        engine = make_engine(tmp_path, workers=2)
        nodes = engine.warm(PAIRS, (("x86", 0),))
        assert nodes == 12  # 2 pairs x 6 stages
        assert engine.stats.misses == 12

        # The figure itself now runs without touching the pipeline.
        engine.store.stats.reset()
        run_fig04(ExperimentRunner(engine=engine), PAIRS)
        assert engine.stats.misses == 0 and engine.stats.puts == 0

    def test_warm_is_idempotent(self, tmp_path):
        engine = make_engine(tmp_path)
        engine.warm(PAIRS[:1], (("x86", 0),))
        puts = engine.stats.puts
        engine.warm(PAIRS[:1], (("x86", 0),))
        assert engine.stats.puts == puts


class TestRunnerDelegation:
    def test_runner_builds_default_engine(self):
        runner = ExperimentRunner(target_instructions=15_000)
        assert runner.engine.target_instructions == 15_000

    def test_runner_adopts_engine_target(self):
        runner = ExperimentRunner(engine=Engine(target_instructions=10_000,
                                                use_cache=False))
        assert runner.target_instructions == 10_000
        assert runner.engine.target_instructions == 10_000

    def test_explicit_runner_target_wins(self):
        runner = ExperimentRunner(
            target_instructions=15_000,
            engine=Engine(target_instructions=10_000, use_cache=False),
        )
        assert runner.engine.target_instructions == 15_000

    def test_runner_exposes_cache_stats(self, tmp_path):
        runner = ExperimentRunner(engine=make_engine(tmp_path))
        runner.original_trace("crc32", "small")
        stats = runner.cache_stats.as_dict()
        assert stats["puts"] == 2  # compile + run

    def test_source_matches_workload(self, tmp_path):
        runner = ExperimentRunner(engine=make_engine(tmp_path))
        from repro.workloads import WORKLOADS

        assert runner.source("crc32", "small") == \
            WORKLOADS["crc32"].source_for("small")
