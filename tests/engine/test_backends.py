"""Backend conformance suite.

Every registered execution backend must produce the same results — and
byte-identical store artifacts — for the same graph: the diamond DAG,
a multi-component graph (what the shard backend actually partitions),
cold-vs-warm replay, and error propagation are exercised across all
four in-tree backends through the one scheduler entry point.
"""

import hashlib
from pathlib import Path

import pytest

from repro.engine.backends import (
    AutoBackend,
    BACKEND_ENV,
    ExecutionBackend,
    InlineBackend,
    ProcessPoolBackend,
    SubprocessShardBackend,
    ThreadBackend,
    backend_names,
    balance_shards,
    default_backend_name,
    partition_components,
    register_backend,
    resolve_backend,
)
from repro.engine.scheduler import run_graph
from repro.engine.store import ArtifactStore
from repro.engine.tasks import (
    DEFAULT_STAGE_COST,
    STAGE_COMPILE,
    STAGE_REPLAY,
    Task,
    stage_cost,
)

BACKENDS = ("inline", "thread", "process", "shard", "auto")


def _graph(*tasks: Task) -> dict[str, Task]:
    return {task.id: task for task in tasks}


# Module-level so worker processes can unpickle them by reference.
def arith_runner(task: Task, deps: dict) -> int:
    base = task.payload.get("value", 0)
    return base + sum(deps.values())


def arith_keyer(task: Task) -> dict:
    return {"value": task.payload.get("value", 0), "deps": sorted(task.deps)}


def _raise(task, deps):
    raise RuntimeError("stage failed")


DIAMOND = _graph(
    Task(id="top", stage="n", payload={"value": 1}),
    Task(id="left", stage="n", payload={"value": 10}, deps=("top",)),
    Task(id="right", stage="n", payload={"value": 100}, deps=("top",)),
    Task(id="bottom", stage="n", payload={"value": 1000},
         deps=("left", "right")),
)

# Three independent chains — what the shard backend splits apart.
COMPONENTS = _graph(
    Task(id="a0", stage="n", payload={"value": 1}),
    Task(id="a1", stage="n", payload={"value": 2}, deps=("a0",)),
    Task(id="b0", stage="n", payload={"value": 3}),
    Task(id="b1", stage="n", payload={"value": 4}, deps=("b0",)),
    Task(id="c0", stage="n", payload={"value": 5}),
)

DIAMOND_EXPECTED = {"top": 1, "left": 11, "right": 101, "bottom": 1112}
COMPONENTS_EXPECTED = {"a0": 1, "a1": 3, "b0": 3, "b1": 7, "c0": 5}


def _store_digests(store: ArtifactStore) -> dict[str, str]:
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path, _, _ in store.entries()
    }


@pytest.mark.parametrize("backend", BACKENDS)
class TestConformance:
    def test_diamond_matches_inline(self, backend):
        results = run_graph(DIAMOND, workers=2, runner=arith_runner,
                            keyer=arith_keyer, backend=backend)
        assert results == DIAMOND_EXPECTED

    def test_multi_component_graph(self, backend):
        results = run_graph(COMPONENTS, workers=3, runner=arith_runner,
                            keyer=arith_keyer, backend=backend)
        assert results == COMPONENTS_EXPECTED

    def test_cold_then_warm_equivalence(self, backend, tmp_path):
        store = ArtifactStore(root=tmp_path)
        cold = run_graph(DIAMOND, workers=2, store=store,
                         runner=arith_runner, keyer=arith_keyer,
                         backend=backend)
        assert store.stats.misses == 4 and store.stats.puts == 4

        store.stats.reset()
        warm = run_graph(DIAMOND, workers=2, store=store,
                         runner=arith_runner, keyer=arith_keyer,
                         backend=backend)
        assert warm == cold
        assert store.stats.hits == 4 and store.stats.misses == 0
        assert store.stats.puts == 0

    def test_preloaded_nodes_not_recomputed(self, backend):
        results = run_graph(DIAMOND, workers=2, runner=arith_runner,
                            keyer=arith_keyer, preloaded={"top": 5},
                            backend=backend)
        assert results["top"] == 5
        assert results["bottom"] == 1000 + 15 + 105

    def test_exception_propagates(self, backend):
        graph = _graph(Task(id="a", stage="n"), Task(id="b", stage="n"))
        with pytest.raises(RuntimeError, match="stage failed"):
            run_graph(graph, workers=2, runner=_raise, keyer=arith_keyer,
                      backend=backend)


class TestIdenticalArtifacts:
    def test_all_backends_produce_identical_store_digests(self, tmp_path):
        digests = {}
        for backend in BACKENDS:
            store = ArtifactStore(root=tmp_path / backend)
            run_graph(COMPONENTS, workers=2, store=store,
                      runner=arith_runner, keyer=arith_keyer,
                      backend=backend)
            digests[backend] = _store_digests(store)
        baseline = digests["inline"]
        assert len(baseline) == len(COMPONENTS)
        for backend in BACKENDS:
            assert digests[backend] == baseline, backend

    def test_warm_replay_across_backends(self, tmp_path):
        """A store populated by one backend satisfies every other."""
        store = ArtifactStore(root=tmp_path)
        run_graph(DIAMOND, workers=2, store=store, runner=arith_runner,
                  keyer=arith_keyer, backend="shard")
        for backend in BACKENDS:
            store.stats.reset()
            results = run_graph(DIAMOND, workers=2, store=store,
                                runner=arith_runner, keyer=arith_keyer,
                                backend=backend)
            assert results == DIAMOND_EXPECTED
            assert store.stats.misses == 0 and store.stats.hits == 4


class TestMetricsParity:
    """The registry merge seam is backend-invariant: identical
    non-volatile snapshots for the same graph across all backends."""

    @staticmethod
    def _run(backend, root):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        store = ArtifactStore(root=root)
        run_graph(COMPONENTS, workers=2, store=store,
                  runner=arith_runner, keyer=arith_keyer,
                  backend=backend, metrics=registry)
        return registry

    def test_cold_snapshots_identical_across_backends(self, tmp_path):
        snapshots = {
            backend: self._run(backend, tmp_path / backend)
            .snapshot(include_volatile=False)
            for backend in BACKENDS
        }
        baseline = snapshots["inline"]
        names = {e["name"] for e in baseline["metrics"]}
        assert {"engine_cache", "engine_stages_executed",
                "engine_store_ops"} <= names
        for backend in BACKENDS:
            assert snapshots[backend] == baseline, backend

    def test_warm_snapshots_identical_across_backends(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        run_graph(COMPONENTS, workers=2, store=store,
                  runner=arith_runner, keyer=arith_keyer, backend="inline")
        snapshots = {}
        for backend in BACKENDS:
            from repro.obs.metrics import MetricsRegistry

            registry = MetricsRegistry()
            run_graph(COMPONENTS, workers=2, store=store,
                      runner=arith_runner, keyer=arith_keyer,
                      backend=backend, metrics=registry)
            snapshots[backend] = registry.snapshot(include_volatile=False)
        baseline = snapshots["inline"]
        entries = {e["name"]: e for e in baseline["metrics"]}
        assert entries["engine_cache"]["data"]["values"] == \
            {"hit": len(COMPONENTS)}
        for backend in BACKENDS:
            assert snapshots[backend] == baseline, backend

    def test_volatile_metrics_present_but_excluded(self, tmp_path):
        registry = self._run("thread", tmp_path)
        full = {e["name"] for e in registry.snapshot()["metrics"]}
        stable = {e["name"] for e in
                  registry.snapshot(include_volatile=False)["metrics"]}
        assert "engine_dispatch_seconds" in full
        assert "engine_dispatch_seconds" not in stable
        assert "engine_ready_depth" not in stable


class TestResolution:
    def test_registry_names(self):
        assert set(BACKENDS) <= set(backend_names())

    def test_workers_one_defaults_to_inline(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(None, workers=1), InlineBackend)
        assert default_backend_name(1) == "inline"

    def test_parallel_defaults_to_process(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(None, workers=4),
                          ProcessPoolBackend)

    def test_env_var_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert isinstance(resolve_backend(None, workers=4), ThreadBackend)

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert isinstance(resolve_backend("shard", workers=2),
                          SubprocessShardBackend)

    def test_instance_passes_through(self):
        backend = ThreadBackend(workers=3)
        assert resolve_backend(backend, workers=1) is backend

    def test_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="inline"):
            resolve_backend("ssh", workers=2)

    def test_third_party_registration(self):
        @register_backend
        class EchoBackend(InlineBackend):
            name = "test-echo"

        try:
            assert isinstance(resolve_backend("test-echo"), EchoBackend)
        finally:
            from repro.engine.backends import base

            base._REGISTRY.pop("test-echo")

    def test_inline_flags(self):
        assert InlineBackend.deterministic
        assert not InlineBackend.persists
        assert ProcessPoolBackend.persists
        assert SubprocessShardBackend.whole_graph
        assert not AutoBackend.persists  # parent writes for both pools

    def test_dispatch_costs_order_by_isolation(self):
        assert InlineBackend.dispatch_cost \
            < ThreadBackend.dispatch_cost \
            < ProcessPoolBackend.dispatch_cost \
            < SubprocessShardBackend.dispatch_cost

    def test_shard_rejects_per_task_submit(self):
        with pytest.raises(RuntimeError, match="whole graphs"):
            SubprocessShardBackend(workers=2).submit(
                Task(id="t", stage="n"), {})

    def test_base_rejects_whole_graph_execution(self):
        backend = ThreadBackend()
        with pytest.raises(NotImplementedError):
            backend.execute_graph({}, [], {}, None)


class TestAutoRouting:
    """The cost table × dispatch_cost routing rule, via the accounting
    the auto backend records per dispatch."""

    def _mixed_graph(self):
        # Stage names drive routing; arith_runner keeps execution cheap.
        return _graph(
            Task(id="c", stage=STAGE_COMPILE, payload={"value": 1}),
            Task(id="r", stage=STAGE_REPLAY, payload={"value": 10},
                 deps=("c",)),
        )

    def test_replay_goes_to_threads_compile_to_processes(self):
        backend = AutoBackend(workers=2)
        results = run_graph(self._mixed_graph(), workers=2,
                            runner=arith_runner, keyer=arith_keyer,
                            backend=backend)
        assert results == {"c": 1, "r": 11}
        assert backend.routed_stages[STAGE_COMPILE] == "process"
        assert backend.routed_stages[STAGE_REPLAY] == "thread"
        assert backend.routed == {"process": 1, "thread": 1}

    def test_unknown_stages_route_heavy(self):
        backend = AutoBackend(workers=2)
        run_graph(DIAMOND, workers=2, runner=arith_runner,
                  keyer=arith_keyer, backend=backend)
        assert backend.routed == {"process": len(DIAMOND)}
        assert stage_cost("n") == DEFAULT_STAGE_COST

    def test_heavy_cost_threshold_is_tunable(self):
        backend = AutoBackend(workers=2, heavy_cost=1000.0)
        run_graph(self._mixed_graph(), workers=2, runner=arith_runner,
                  keyer=arith_keyer, backend=backend)
        assert backend.routed == {"thread": 2}

    def test_instance_survives_multiple_graphs(self):
        # Engine.warm resolves per graph but an instance accumulates.
        backend = AutoBackend(workers=2)
        run_graph(self._mixed_graph(), workers=2, runner=arith_runner,
                  keyer=arith_keyer, backend=backend)
        run_graph(self._mixed_graph(), workers=2, runner=arith_runner,
                  keyer=arith_keyer, backend=backend)
        assert backend.routed == {"process": 2, "thread": 2}


class TestSharding:
    def test_partition_finds_components(self):
        pending = [COMPONENTS[tid] for tid in sorted(COMPONENTS)]
        comps = partition_components(COMPONENTS, pending)
        assert comps == [["a0", "a1"], ["b0", "b1"], ["c0"]]

    def test_partition_excludes_resolved_boundary(self):
        # With a0/b0 already resolved, the chains fall apart into
        # singleton components.
        pending = [COMPONENTS[tid] for tid in ("a1", "b1", "c0")]
        comps = partition_components(COMPONENTS, pending)
        assert comps == [["a1"], ["b1"], ["c0"]]

    def test_balance_is_deterministic_and_bounded(self):
        comps = [["a", "b", "c"], ["d"], ["e", "f"]]
        shards = balance_shards(comps, 2)
        assert shards == [["a", "b", "c"], ["d", "e", "f"]]
        # One component per shard when there's room, largest first.
        assert balance_shards(comps, 10) == [["a", "b", "c"], ["e", "f"],
                                             ["d"]]
        assert balance_shards(comps, 1) == [["a", "b", "c", "d", "e", "f"]]

    def test_shard_resumes_from_partially_resolved_graph(self, tmp_path):
        """Boundary values reach shards even when upstream tasks were
        resolved from the store by a previous run."""
        store = ArtifactStore(root=tmp_path)
        prefix = _graph(COMPONENTS["a0"], COMPONENTS["b0"])
        run_graph(prefix, workers=1, store=store, runner=arith_runner,
                  keyer=arith_keyer, backend="inline")

        store.stats.reset()
        results = run_graph(COMPONENTS, workers=2, store=store,
                            runner=arith_runner, keyer=arith_keyer,
                            backend="shard")
        assert results == COMPONENTS_EXPECTED
        assert store.stats.hits == 2      # a0, b0 replayed
        assert store.stats.misses == 3    # a1, b1, c0 computed in shards


class TestShardDrain:
    """Shard workers drain on request: the in-flight task finishes, its
    artifact is persisted and exported, and the payload says so."""

    @staticmethod
    def _chain_spec(tmp_path, runner=arith_runner, keyer=arith_keyer):
        graph = _graph(
            Task(id="n0", stage="n", payload={"value": 1}),
            Task(id="n1", stage="n", payload={"value": 10}, deps=("n0",)),
            Task(id="n2", stage="n", payload={"value": 100}, deps=("n1",)),
        )
        spec = {
            "graph": graph,
            "preloaded": {},
            "runner": runner,
            "keyer": keyer,
            "store_spec": (str(tmp_path / "store"), 1, "drain-test"),
            "export_dir": str(tmp_path / "export"),
        }
        return graph, spec

    def test_run_shard_drains_after_inflight_task(self, tmp_path):
        from repro.engine.shard import run_shard

        _, spec = self._chain_spec(tmp_path)
        polls = []
        # False on the first poll (n0 dispatches), True afterwards: the
        # drain request lands while n0 is "in flight".
        stop = lambda: polls.append(1) or len(polls) > 1  # noqa: E731

        payload = run_shard(spec, stop=stop)
        assert payload["drained"] is True
        assert payload["results"] == {"n0": 1}
        assert payload["exported"] == 1

    def test_drained_export_resumes_in_parent_store(self, tmp_path):
        from repro.engine.shard import run_shard

        graph, spec = self._chain_spec(tmp_path)
        polls = []
        payload = run_shard(
            spec, stop=lambda: polls.append(1) or len(polls) > 1)
        assert payload["drained"] is True

        # The parent imports what the drained worker managed to export,
        # then a cold rerun picks up exactly where the worker stopped.
        parent = ArtifactStore(root=tmp_path / "parent", schema_version=1,
                               toolchain="drain-test")
        assert parent.import_keys(payload["export_dir"]) == 1
        parent.stats.reset()
        results = run_graph(graph, workers=1, store=parent,
                            runner=arith_runner, keyer=arith_keyer,
                            backend="inline")
        assert results == {"n0": 1, "n1": 11, "n2": 111}
        assert parent.stats.hits == 1     # n0 came from the drained shard
        assert parent.stats.misses == 2   # n1, n2 computed fresh

    def test_full_run_reports_not_drained(self, tmp_path):
        from repro.engine.shard import run_shard

        _, spec = self._chain_spec(tmp_path)
        payload = run_shard(spec, stop=lambda: False)
        assert payload["drained"] is False
        assert payload["results"] == {"n0": 1, "n1": 11, "n2": 111}

    def test_worker_sigterm_exits_zero_with_drained_payload(self, tmp_path):
        """End to end: ``python -m repro.engine.shard`` under SIGTERM
        persists the in-flight task, writes a drained payload, exits 0."""
        import importlib
        import os
        import pickle
        import subprocess
        import sys
        import textwrap

        # The runner SIGTERMs its own process mid-task, which makes the
        # "signal arrives while a task is in flight" window deterministic.
        helper = tmp_path / "shard_drain_helper.py"
        helper.write_text(textwrap.dedent("""\
            import os
            import signal

            def runner(task, deps):
                os.kill(os.getpid(), signal.SIGTERM)
                return task.payload.get("value", 0) + sum(deps.values())

            def keyer(task):
                return {"value": task.payload.get("value", 0),
                        "deps": sorted(task.deps)}
        """))
        sys.path.insert(0, str(tmp_path))
        try:
            mod = importlib.import_module("shard_drain_helper")
            _, spec = self._chain_spec(tmp_path, runner=mod.runner,
                                       keyer=mod.keyer)
            in_path = tmp_path / "spec.pkl"
            out_path = tmp_path / "out.pkl"
            in_path.write_bytes(pickle.dumps(spec))

            import repro
            src_dir = str(Path(repro.__file__).resolve().parents[1])
            env = dict(os.environ)
            env["PYTHONPATH"] = os.pathsep.join(
                [str(tmp_path), src_dir, env.get("PYTHONPATH", "")])
            proc = subprocess.run(
                [sys.executable, "-m", "repro.engine.shard",
                 "--input", str(in_path), "--output", str(out_path)],
                env=env, capture_output=True, text=True, timeout=60)
        finally:
            sys.path.remove(str(tmp_path))
            sys.modules.pop("shard_drain_helper", None)

        assert proc.returncode == 0, proc.stderr
        payload = pickle.loads(out_path.read_bytes())
        assert payload["drained"] is True
        assert payload["results"] == {"n0": 1}
        assert payload["exported"] == 1
