"""Cache-aware baseline comparison (repro.engine.bench)."""

import json

import pytest

from repro.engine.bench import (
    BenchRecord,
    cache_mode,
    compare_baselines,
    compare_records,
    load_benchmark_json,
    main,
    records_from_data,
    regressions,
    split_cold_warm,
    write_cold_warm_pair,
)


def rec(name="fig", mean=1.0, hits=0, misses=0):
    return BenchRecord(name=name, mean=mean,
                       cache={"hits": hits, "misses": misses, "puts": misses,
                              "evictions": 0})


def payload(*benches):
    return {
        "machine_info": {"cpu": "test"},
        "benchmarks": [
            {
                "name": name,
                "stats": {"mean": mean},
                "extra_info": {"cache": cache} if cache is not None else {},
            }
            for name, mean, cache in benches
        ],
    }


class TestCacheMode:
    def test_modes(self):
        assert cache_mode({"misses": 3, "hits": 1}) == "cold"
        assert cache_mode({"misses": 0, "hits": 9}) == "warm"
        assert cache_mode({"misses": 0, "hits": 0}) == "uncached"
        assert cache_mode(None) == "uncached"
        assert cache_mode({}) == "uncached"


class TestCompareRecords:
    def test_same_mode_slowdown_is_a_compute_regression(self):
        v = compare_records(rec(mean=1.0, hits=5), rec(mean=1.5, hits=5))
        assert v.verdict == "compute-regression"
        assert v.ratio == 1.5

    def test_same_mode_speedup_is_a_compute_improvement(self):
        v = compare_records(rec(mean=2.0, misses=5), rec(mean=1.0, misses=5))
        assert v.verdict == "compute-improvement"

    def test_same_mode_within_tolerance_is_stable(self):
        v = compare_records(rec(mean=1.0, hits=5), rec(mean=1.05, hits=5))
        assert v.verdict == "stable"

    def test_cold_to_warm_speedup_is_attributed_to_the_cache(self):
        """The headline case: a 30x 'speedup' that is pure cache hits."""
        v = compare_records(rec(mean=30.0, misses=48),
                            rec(mean=1.0, hits=48))
        assert v.verdict == "cache-speedup"
        assert v.old_mode == "cold" and v.new_mode == "warm"

    def test_warm_run_slower_than_cold_baseline_is_a_real_regression(self):
        v = compare_records(rec(mean=1.0, misses=48),
                            rec(mean=2.0, hits=48))
        assert v.verdict == "compute-regression"

    def test_warm_to_cold_slowdown_is_cache_state_not_compute(self):
        v = compare_records(rec(mean=1.0, hits=48),
                            rec(mean=30.0, misses=48))
        assert v.verdict == "cache-cold"

    def test_uncached_baseline_vs_warm_slowdown_is_a_regression(self):
        # Uncached runs measure pure compute, like cold ones: a warm
        # run that is *slower* than an uncached baseline regressed.
        v = compare_records(BenchRecord("b", 1.0, {}),
                            rec("b", mean=5.0, hits=48))
        assert v.verdict == "compute-regression"

    def test_uncached_vs_cold_compare_as_compute(self):
        v = compare_records(BenchRecord("b", 1.0, {}),
                            rec("b", mean=2.0, misses=9))
        assert v.verdict == "compute-regression"

    def test_tolerance_is_configurable(self):
        v = compare_records(rec(mean=1.0, hits=1), rec(mean=1.1, hits=1),
                            tolerance=0.05)
        assert v.verdict == "compute-regression"


class TestCompareBaselines:
    def test_new_and_missing_benchmarks_are_flagged(self):
        old = {"a": rec("a"), "gone": rec("gone")}
        new = {"a": rec("a"), "fresh": rec("fresh")}
        verdicts = {v.name: v.verdict for v in compare_baselines(old, new)}
        assert verdicts == {"a": "stable", "gone": "missing",
                            "fresh": "new"}

    def test_regressions_filter(self):
        old = {"a": rec("a", mean=1.0, hits=1)}
        new = {"a": rec("a", mean=9.0, hits=1)}
        assert len(regressions(compare_baselines(old, new))) == 1


class TestJsonRoundTrip:
    def test_records_from_benchmark_json(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload(
            ("one", 1.5, {"hits": 0, "misses": 7}),
            ("two", 0.1, None),
        )))
        records = load_benchmark_json(path)
        assert records["one"].mode == "cold"
        assert records["one"].mean == 1.5
        assert records["two"].mode == "uncached"

    def test_split_cold_warm_partitions_by_mode(self):
        data = payload(
            ("cold_one", 5.0, {"hits": 0, "misses": 3}),
            ("warm_one", 0.2, {"hits": 9, "misses": 0}),
            ("uncached_one", 1.0, None),
        )
        cold, warm = split_cold_warm(data)
        assert [b["name"] for b in cold["benchmarks"]] == \
            ["cold_one", "uncached_one"]
        assert [b["name"] for b in warm["benchmarks"]] == ["warm_one"]
        assert cold["machine_info"] == data["machine_info"]

    def test_write_cold_warm_pair(self, tmp_path):
        src = tmp_path / "BENCH.json"
        src.write_text(json.dumps(payload(
            ("a", 1.0, {"hits": 3, "misses": 0}),
        )))
        cold_path, warm_path = write_cold_warm_pair(src, tmp_path / "out")
        assert cold_path.name == "BENCH_cold.json"
        assert warm_path.name == "BENCH_warm.json"
        warm = records_from_data(json.loads(warm_path.read_text()))
        assert list(warm) == ["a"]


class TestCli:
    def test_compare_exits_nonzero_on_regression(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(payload(
            ("fig", 1.0, {"hits": 5, "misses": 0}))))
        new.write_text(json.dumps(payload(
            ("fig", 9.0, {"hits": 5, "misses": 0}))))
        assert main(["compare", str(old), str(new)]) == 1
        out, _ = capsys.readouterr()
        assert "compute-regression" in out

    def test_compare_accepts_cache_speedups(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(payload(
            ("fig", 30.0, {"hits": 0, "misses": 48}))))
        new.write_text(json.dumps(payload(
            ("fig", 1.0, {"hits": 48, "misses": 0}))))
        assert main(["compare", str(old), str(new)]) == 0
        assert "cache-speedup" in capsys.readouterr()[0]

    def test_split_cli(self, tmp_path, capsys):
        src = tmp_path / "BENCH.json"
        src.write_text(json.dumps(payload(
            ("a", 1.0, {"hits": 0, "misses": 2}))))
        assert main(["split", str(src)]) == 0
        assert (tmp_path / "BENCH_cold.json").exists()
        assert (tmp_path / "BENCH_warm.json").exists()
