"""ArtifactStore: round-trips, key stability, invalidation, eviction."""

import pickle
import time

import pytest

from repro.engine.store import (
    CACHE_DIR_ENV,
    CACHE_MAX_BYTES_ENV,
    ArtifactStore,
    canonical_key,
    default_cache_root,
    main,
    source_fingerprint,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(root=tmp_path / "cache")


class TestKeys:
    def test_canonical_key_is_order_insensitive(self):
        assert canonical_key({"a": 1, "b": "x"}) == \
            canonical_key({"b": "x", "a": 1})

    def test_canonical_key_is_stable(self):
        # Pinned: changing this recipe must bump SCHEMA_VERSION instead.
        assert canonical_key({"a": 1}) == (
            "015abd7f5cc57a2dd94b7590f04ad8084273905ee33ec5cebeae62276a97f862"
        )

    def test_key_for_varies_with_every_field(self, store):
        base = dict(source_sha=source_fingerprint("int main() {}"),
                    isa="x86", opt_level=0)
        key = store.key_for("compile", **base)
        assert key != store.key_for("run", **base)
        assert key != store.key_for(
            "compile", **{**base, "source_sha": source_fingerprint("x")})
        assert key != store.key_for("compile", **{**base, "isa": "ia64"})
        assert key != store.key_for("compile", **{**base, "opt_level": 2})

    def test_schema_version_invalidates(self, tmp_path):
        v1 = ArtifactStore(root=tmp_path, schema_version=1)
        v2 = ArtifactStore(root=tmp_path, schema_version=2)
        fields = dict(source_sha="s", isa="x86", opt_level=0)
        v1.put(v1.key_for("compile", **fields), "old")
        assert v2.get(v2.key_for("compile", **fields)) is None
        assert v2.stats.misses == 1

    def test_toolchain_fingerprint_invalidates(self, tmp_path):
        ours = ArtifactStore(root=tmp_path)
        other = ArtifactStore(root=tmp_path, toolchain="f" * 64)
        fields = dict(source_sha="s", isa="x86", opt_level=0)
        ours.put(ours.key_for("compile", **fields), "artifact")
        assert other.get(other.key_for("compile", **fields)) is None


class TestRoundTrip:
    def test_put_get(self, store):
        key = store.key_for("compile", source_sha="abc", isa="x86",
                            opt_level=1)
        value = {"binary": list(range(100)), "nested": ("x", 1.5)}
        store.put(key, value)
        assert store.get(key) == value
        assert store.contains(key)
        assert store.stats.puts == 1 and store.stats.hits == 1

    def test_get_missing_counts_miss(self, store):
        assert store.get("0" * 64, default="fallback") == "fallback"
        assert store.stats.misses == 1

    def test_corrupt_entry_is_dropped(self, store):
        key = store.key_for("run", source_sha="abc", isa="x86", opt_level=0)
        store.put(key, [1, 2, 3])
        store.path_for(key).write_bytes(b"\x80corrupt")
        assert store.get(key) is None
        assert not store.contains(key)

    def test_put_is_atomic(self, store):
        key = store.key_for("compile", source_sha="a", isa="x86", opt_level=0)
        store.put(key, "v1")
        store.put(key, "v2")
        assert store.get(key) == "v2"
        leftovers = list(store.path_for(key).parent.glob("*.tmp"))
        assert leftovers == []

    def test_delete(self, store):
        key = store.key_for("compile", source_sha="a", isa="x86", opt_level=0)
        store.put(key, 1)
        assert store.delete(key)
        assert not store.delete(key)


class TestMaintenance:
    def _fill(self, store, n):
        keys = []
        for i in range(n):
            key = store.key_for("compile", source_sha=f"s{i}", isa="x86",
                                opt_level=0)
            store.put(key, b"x" * 100)
            keys.append(key)
        return keys

    def test_info(self, store):
        self._fill(store, 3)
        info = store.info()
        assert info["entries"] == 3
        assert info["total_bytes"] > 0
        assert info["root"] == str(store.root)

    def test_clear(self, store):
        self._fill(store, 4)
        assert store.clear() == 4
        assert store.info()["entries"] == 0
        assert store.stats.evictions == 4

    def test_evict_lru_by_entries(self, store):
        keys = self._fill(store, 4)
        # Make the first entry oldest deterministically.
        import os
        old = time.time() - 1000
        os.utime(store.path_for(keys[0]), (old, old))
        assert store.evict(max_entries=3) == 1
        assert not store.contains(keys[0])
        assert all(store.contains(k) for k in keys[1:])

    def test_get_refreshes_lru_position(self, store):
        import os
        keys = self._fill(store, 2)
        old = time.time() - 1000
        for key in keys:
            os.utime(store.path_for(key), (old, old))
        store.get(keys[0])  # read rescues keys[0] from eviction
        assert store.evict(max_entries=1) == 1
        assert store.contains(keys[0])
        assert not store.contains(keys[1])

    def test_evict_by_bytes(self, store):
        self._fill(store, 4)
        total = store.info()["total_bytes"]
        removed = store.evict(max_bytes=total // 2)
        assert removed >= 2
        assert store.info()["total_bytes"] <= total // 2


class TestSyncing:
    def _put(self, store, tag, value):
        key = store.key_for("compile", source_sha=tag, isa="x86",
                            opt_level=0)
        store.put(key, value)
        return key

    def test_export_import_round_trip(self, store, tmp_path):
        keys = [self._put(store, f"s{i}", f"v{i}") for i in range(3)]
        assert store.export_keys(keys, tmp_path / "export") == 3

        other = ArtifactStore(root=tmp_path / "other")
        assert other.import_keys(tmp_path / "export") == 3
        assert other.stats.puts == 3
        for i, key in enumerate(keys):
            assert other.get(key) == f"v{i}"

    def test_export_skips_missing_keys(self, store, tmp_path):
        key = self._put(store, "s", "v")
        assert store.export_keys([key, "0" * 64], tmp_path / "export") == 1

    def test_import_selected_keys_only(self, store, tmp_path):
        keys = [self._put(store, f"s{i}", i) for i in range(3)]
        other = ArtifactStore(root=tmp_path / "other")
        # A whole store root is itself a valid import source.
        assert other.import_keys(store.root, keys=keys[:1]) == 1
        assert other.contains(keys[0])
        assert not other.contains(keys[1])

    def test_import_from_empty_source(self, store, tmp_path):
        assert store.import_keys(tmp_path / "nothing-here") == 0

    def test_import_carries_provenance(self, store, tmp_path):
        """gc on the receiving store must still see who wrote what."""
        key = self._put(store, "s", "v")
        other = ArtifactStore(root=tmp_path / "other")
        other.import_keys(store.root)
        assert other.gc(remove=False)["stale"] == []
        assert other.gc(remove=False)["unknown"] == []


class TestGc:
    def _fill(self, store, count=2):
        keys = []
        for i in range(count):
            key = store.key_for("compile", source_sha=f"s{i}", isa="x86",
                                opt_level=0)
            store.put(key, i)
            keys.append(key)
        return keys

    def test_keeps_live_entries(self, store):
        self._fill(store, 3)
        report = store.gc()
        assert report == {"scanned": 3, "stale": [], "unknown": [],
                          "removed": 0, "kept": 3}

    def test_collects_foreign_toolchain(self, tmp_path):
        old = ArtifactStore(root=tmp_path, toolchain="f" * 64)
        stale_keys = self._fill(old, 2)
        live = ArtifactStore(root=tmp_path)
        live_keys = self._fill(live, 1)

        report = live.gc()
        assert len(report["stale"]) == 2
        assert report["removed"] == 2
        assert live.stats.evictions == 2
        assert all(not live.contains(k) for k in stale_keys)
        assert all(live.contains(k) for k in live_keys)

    def test_collects_foreign_schema(self, tmp_path):
        old = ArtifactStore(root=tmp_path, schema_version=0)
        self._fill(old, 1)
        live = ArtifactStore(root=tmp_path)
        report = live.gc()
        assert len(report["stale"]) == 1 and report["removed"] == 1

    def test_keeps_entries_without_provenance_by_default(self, store):
        # Sidecar-less entries may still be addressable (their keys
        # don't depend on the sidecar): report them, don't delete them.
        keys = self._fill(store, 1)
        store._meta_path(store.path_for(keys[0])).unlink()
        report = store.gc()
        assert report["unknown"] == [str(store.path_for(keys[0]))]
        assert report["removed"] == 0
        assert store.contains(keys[0])

    def test_collect_unknown_opts_in(self, store):
        keys = self._fill(store, 1)
        store._meta_path(store.path_for(keys[0])).unlink()
        report = store.gc(collect_unknown=True)
        assert report["removed"] == 1
        assert not store.contains(keys[0])

    def test_dry_run_removes_nothing(self, tmp_path):
        old = ArtifactStore(root=tmp_path, toolchain="f" * 64)
        keys = self._fill(old, 2)
        live = ArtifactStore(root=tmp_path)
        report = live.gc(remove=False)
        assert len(report["stale"]) == 2 and report["removed"] == 0
        assert all(live.contains(k) for k in keys)

    def test_delete_drops_provenance_sidecar(self, store):
        keys = self._fill(store, 1)
        path = store.path_for(keys[0])
        assert store._meta_path(path).exists()
        store.delete(keys[0])
        assert not store._meta_path(path).exists()

    def test_gc_cli(self, tmp_path, capsys):
        old = ArtifactStore(root=tmp_path, toolchain="f" * 64)
        self._fill(old, 2)
        ArtifactStore(root=tmp_path).put(
            ArtifactStore(root=tmp_path).key_for(
                "compile", source_sha="live", isa="x86", opt_level=0), 1)

        assert main(["--cache-dir", str(tmp_path), "gc", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would collect 2" in out and "kept 1" in out

        assert main(["--cache-dir", str(tmp_path), "gc"]) == 0
        assert "collected 2, kept 1" in capsys.readouterr().out

        assert main(["--cache-dir", str(tmp_path), "gc"]) == 0
        assert "collected 0, kept 1" in capsys.readouterr().out


class TestRootResolution:
    def test_env_var_overrides(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "via-env"))
        assert default_cache_root() == tmp_path / "via-env"
        assert ArtifactStore().root == tmp_path / "via-env"

    def test_explicit_root_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "via-env"))
        assert ArtifactStore(root=tmp_path / "api").root == tmp_path / "api"

    def test_xdg_fallback(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_root() == tmp_path / "xdg" / "repro"


class TestByStage:
    def _seed(self, store):
        store.put(store.key_for("compile", source_sha="a"), b"x" * 100,
                  stage="compile")
        store.put(store.key_for("compile", source_sha="b"), b"x" * 100,
                  stage="compile")
        store.put(store.key_for("replay", source_sha="a", machine="m"),
                  b"y" * 10, stage="replay")
        store.put(store.key_for("misc", source_sha="c"), b"z")  # no stage

    def test_breakdown_counts_entries_and_bytes(self, store):
        self._seed(store)
        breakdown = store.by_stage()
        assert set(breakdown) == {"compile", "replay", "(unknown)"}
        assert breakdown["compile"]["entries"] == 2
        assert breakdown["replay"]["entries"] == 1
        assert breakdown["(unknown)"]["entries"] == 1
        assert breakdown["compile"]["bytes"] > breakdown["replay"]["bytes"]

    def test_sidecarless_entries_group_as_unknown(self, store):
        key = store.key_for("compile", source_sha="a")
        store.put(key, 1, stage="compile")
        store._meta_path(store.path_for(key)).unlink()
        assert store.by_stage() == {
            "(unknown)": {"entries": 1,
                          "bytes": store.path_for(key).stat().st_size,
                          "mean_seconds": None,
                          "timed_entries": 0}
        }

    def test_stage_survives_export_import(self, store, tmp_path):
        key = store.key_for("replay", source_sha="a", machine="m")
        store.put(key, 7, stage="replay")
        store.export_keys([key], tmp_path / "exported")
        other = ArtifactStore(root=tmp_path / "other")
        other.import_keys(tmp_path / "exported")
        assert other.by_stage() == {
            "replay": {"entries": 1,
                       "bytes": other.path_for(key).stat().st_size,
                       "mean_seconds": None,
                       "timed_entries": 0}
        }

    def test_stats_cli_by_stage(self, store, capsys):
        self._seed(store)
        assert main(["--cache-dir", str(store.root), "stats",
                     "--by-stage"]) == 0
        out = capsys.readouterr().out
        assert "entries:     4" in out
        assert "compile" in out and "replay" in out and "(unknown)" in out

    def test_breakdown_counts_timed_entries(self, store):
        store.put(store.key_for("compile", source_sha="a"), 1,
                  stage="compile", seconds=0.25)
        store.put(store.key_for("compile", source_sha="b"), 2,
                  stage="compile", seconds=0.75)
        store.put(store.key_for("compile", source_sha="c"), 3,
                  stage="compile")  # untimed
        bucket = store.by_stage()["compile"]
        assert bucket["entries"] == 3
        assert bucket["timed_entries"] == 2
        assert bucket["mean_seconds"] == pytest.approx(0.5)

    def test_stats_cli_by_stage_prints_sample_counts(self, store, capsys):
        store.put(store.key_for("replay", source_sha="a", machine="m"),
                  1, stage="replay", seconds=0.5)
        store.put(store.key_for("replay", source_sha="b", machine="m"),
                  2, stage="replay", seconds=1.5)
        assert main(["--cache-dir", str(store.root), "stats",
                     "--by-stage"]) == 0
        out = capsys.readouterr().out
        assert "mean over 2 sample(s)" in out

    def test_stats_cli_totals_only(self, store, capsys):
        self._seed(store)
        assert main(["--cache-dir", str(store.root), "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries:     4" in out
        assert "compile" not in out


class TestCli:
    def test_info_and_clear(self, tmp_path, capsys):
        store = ArtifactStore(root=tmp_path)
        store.put(store.key_for("compile", source_sha="s", isa="x86",
                                opt_level=0), 42)
        assert main(["--cache-dir", str(tmp_path), "info"]) == 0
        out = capsys.readouterr().out
        assert "entries:        1" in out
        assert main(["--cache-dir", str(tmp_path), "clear"]) == 0
        assert "removed 1 entries" in capsys.readouterr().out

    def test_evict_requires_limit(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--cache-dir", str(tmp_path), "evict"])

    def test_evict_cli(self, tmp_path, capsys):
        store = ArtifactStore(root=tmp_path)
        for i in range(3):
            store.put(store.key_for("compile", source_sha=f"s{i}",
                                    isa="x86", opt_level=0), i)
        assert main(["--cache-dir", str(tmp_path), "evict",
                     "--max-entries", "1"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out

    def test_artifacts_survive_pickle_protocol(self, store):
        # Stored values are plain pickles readable by any same-env process.
        key = store.key_for("profile", source_sha="s", ref_isa="x86",
                            ref_opt=0)
        store.put(key, {"mix": {"load": 0.3}})
        raw = store.path_for(key).read_bytes()
        assert pickle.loads(raw) == {"mix": {"load": 0.3}}


class TestLifecycle:
    def _fill(self, store, count=4, blob=1000):
        keys = []
        for i in range(count):
            key = store.key_for("compile", source_sha=f"s{i}", isa="x86",
                                opt_level=0)
            store.put(key, "x" * blob)
            keys.append(key)
            time.sleep(0.01)  # distinct mtimes for LRU order
        return keys

    def test_put_auto_evicts_past_max_bytes(self, tmp_path):
        store = ArtifactStore(root=tmp_path / "capped")
        keys = self._fill(store, count=3)
        total = sum(size for _, size, _ in store.entries())
        store.max_bytes = total  # room for ~3 entries, no more
        extra = store.key_for("compile", source_sha="s-new", isa="x86",
                              opt_level=0)
        store.put(extra, "y" * 1000)
        assert sum(size for _, size, _ in store.entries()) <= total
        assert store.stats.evictions >= 1
        # LRU: the oldest entry went first; the new one survived.
        assert not store.contains(keys[0])
        assert store.contains(extra)

    def test_max_bytes_from_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "12345")
        assert ArtifactStore(root=tmp_path).max_bytes == 12345
        monkeypatch.delenv(CACHE_MAX_BYTES_ENV)
        assert ArtifactStore(root=tmp_path).max_bytes is None

    def test_unbounded_store_never_auto_evicts(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        self._fill(store, count=3)
        assert store.stats.evictions == 0
        assert store.info()["entries"] == 3

    def test_fsck_detects_and_removes_corruption(self, store):
        keys = self._fill(store, count=3)
        victim = store.path_for(keys[1])
        victim.write_bytes(b"\x80\x05 truncated garbage")
        report = store.fsck(remove=False)
        assert report["scanned"] == 3
        assert report["corrupt"] == [str(victim)]
        assert report["removed"] == 0
        assert victim.exists()

        report = store.fsck()
        assert report["removed"] == 1
        assert not victim.exists()
        # Healthy entries survive and still load.
        assert store.get(keys[0]) == "x" * 1000

    def test_fsck_clean_store(self, store):
        self._fill(store, count=2)
        report = store.fsck()
        assert report == {"scanned": 2, "corrupt": [], "removed": 0,
                          "stale_tmp": [], "tmp_removed": 0}

    def test_fsck_reclaims_orphaned_tmp_files(self, store):
        import os
        keys = self._fill(store, count=1)
        bucket = store.path_for(keys[0]).parent
        stale = bucket / "deadbeef.tmp"
        stale.write_bytes(b"half-written")
        old = time.time() - store.STALE_TMP_SECONDS - 10
        os.utime(stale, (old, old))
        fresh = bucket / "inflight.tmp"
        fresh.write_bytes(b"racing writer")  # current mtime: kept

        report = store.fsck(remove=False)
        assert report["stale_tmp"] == [str(stale)]
        assert stale.exists()

        report = store.fsck()
        assert report["tmp_removed"] == 1
        assert not stale.exists()
        assert fresh.exists()

    def test_clear_removes_tmp_leftovers(self, store):
        keys = self._fill(store, count=1)
        leftover = store.path_for(keys[0]).parent / "orphan.tmp"
        leftover.write_bytes(b"junk")
        store.clear()
        assert not leftover.exists()

    def test_fsck_cli(self, tmp_path, capsys):
        store = ArtifactStore(root=tmp_path)
        keys = self._fill(store, count=2)
        store.path_for(keys[0]).write_bytes(b"bad")
        assert main(["--cache-dir", str(tmp_path), "fsck", "--keep"]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt, 0 removed" in out
        assert main(["--cache-dir", str(tmp_path), "fsck"]) == 0
        assert "1 corrupt, 1 removed" in capsys.readouterr().out
        assert main(["--cache-dir", str(tmp_path), "fsck"]) == 0
        assert "0 corrupt" in capsys.readouterr().out


class TestConcurrentAccess:
    """Two handles over one root — the daemon + CLI sharing a cache."""

    def test_racing_puts_of_same_key_never_tear(self, tmp_path):
        import json
        import threading
        from concurrent.futures import ThreadPoolExecutor

        writers = [ArtifactStore(root=tmp_path, toolchain="t" * 64)
                   for _ in range(4)]
        key = writers[0].key_for("compile", source_sha="s", isa="x86",
                                 opt_level=0)
        payload = {"binary": "b" * 4096}
        barrier = threading.Barrier(4)

        def put(store):
            barrier.wait(5.0)
            for _ in range(25):
                store.put(key, payload, stage="compile", seconds=0.25)

        with ThreadPoolExecutor(4) as pool:
            list(pool.map(put, writers))

        # Atomic replace: the object and its sidecar are both complete.
        reader = ArtifactStore(root=tmp_path, toolchain="t" * 64)
        assert reader.get(key) == payload
        meta = json.loads(
            reader._meta_path(reader.path_for(key)).read_text())
        assert meta["stage"] == "compile"
        assert meta["seconds"] == 0.25

    def test_hit_accounting_is_per_handle(self, tmp_path):
        first = ArtifactStore(root=tmp_path, toolchain="t" * 64)
        second = ArtifactStore(root=tmp_path, toolchain="t" * 64)
        key = first.key_for("run", source_sha="s", isa="x86", opt_level=0)
        first.put(key, "trace")
        assert second.get(key) == "trace"
        assert second.stats.hits == 1 and second.stats.misses == 0
        assert first.stats.hits == 0 and first.stats.puts == 1

    def test_interleaved_engines_share_artifacts(self, tmp_path):
        from repro.engine.api import Engine
        from repro.workloads import WORKLOADS

        workload = list(WORKLOADS)[0]
        one = Engine(store=ArtifactStore(root=tmp_path))
        two = Engine(store=ArtifactStore(root=tmp_path))
        one.original_trace(workload, "small")
        misses_before = two.store.stats.misses
        two.original_trace(workload, "small")
        # The second engine resolves everything from the first's
        # persisted artifacts: hits only, no new misses.
        assert two.store.stats.misses == misses_before
        assert two.store.stats.hits >= 1

    def test_concurrent_engines_one_store_no_duplicate_state(self,
                                                             tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        from repro.engine.api import Engine
        from repro.workloads import WORKLOADS

        workload = list(WORKLOADS)[0]
        shared = ArtifactStore(root=tmp_path)
        engines = [Engine(store=shared) for _ in range(3)]

        with ThreadPoolExecutor(3) as pool:
            traces = list(pool.map(
                lambda engine: engine.original_trace(workload, "small"),
                engines))

        counts = {str(trace.instructions) for trace in traces}
        assert len(counts) == 1, "every engine read the same trace"
        # Whatever the interleaving, the store never recorded a failed
        # read (torn write) — every get was a clean hit or miss.
        stats = shared.stats.as_dict()
        assert stats["hits"] + stats["misses"] >= 2
