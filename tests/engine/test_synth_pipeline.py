"""A generated workload through the full pipeline, on every backend.

The tentpole contract of the synthetic workload generator: a
``synth:`` pair is indistinguishable from a builtin pair to the
engine — same 7-stage graph, byte-identical store artifacts on all
five backends, recipe persisted to the store as a side effect, and
per-workload metrics accounted identically everywhere.
"""

import hashlib

from repro.engine.api import Engine
from repro.obs.metrics import MetricsRegistry
from repro.workloads.synth import SynthRecipe, stored_recipe

BACKENDS = ("inline", "thread", "process", "shard", "auto")

#: Tiny on purpose: the properties under test are structural, not
#: statistical — one small recipe keeps five cold pipelines fast.
RECIPE = SynthRecipe(seed=5, mix="int", footprint=64, depth=1, trip=3,
                     entropy=20, calls=1)
PAIR = (RECIPE.name, "small")


def _store_digests(store) -> dict[str, str]:
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path, _, _ in store.entries()
    }


class TestSynthAcrossBackends:
    def test_identical_store_artifacts_on_all_five_backends(self, tmp_path):
        """Every backend persists the same artifact set for a synth
        pair: identical content-address key sets everywhere, and
        byte-identical payloads on the backends that compute whole
        dependency chains in one process (inline/thread/shard).  The
        process-pool backends rebuild stage inputs by unpickling, which
        perturbs object-identity sharing inside the payload pickles by
        a few memo refs (same for builtin workloads), so for those the
        equivalence check is the semantic one below."""
        digests = {}
        for backend in BACKENDS:
            engine = Engine(cache_dir=tmp_path / backend, workers=2,
                            backend=backend)
            nodes = engine.warm((PAIR,), (("x86", 0),))
            assert nodes > 0
            digests[backend] = _store_digests(engine.store)
        baseline = digests["inline"]
        assert baseline  # the pipeline actually persisted artifacts
        for backend in BACKENDS:
            assert set(digests[backend]) == set(baseline), backend
        for backend in ("thread", "shard"):
            assert digests[backend] == baseline, backend

    def test_identical_terminal_results_on_all_five_backends(self, tmp_path):
        traces = {}
        for backend in BACKENDS:
            engine = Engine(cache_dir=tmp_path / backend, workers=2,
                            backend=backend)
            engine.warm((PAIR,), (("x86", 0),))
            org = engine.original_trace(*PAIR)
            syn = engine.synthetic_trace(*PAIR)
            traces[backend] = (org.instructions, org.output,
                               syn.instructions, syn.output)
        for backend in BACKENDS:
            assert traces[backend] == traces["inline"], backend

    def test_warm_resweep_does_zero_work(self, tmp_path):
        engine = Engine(cache_dir=tmp_path, workers=2)
        engine.warm((PAIR,), (("x86", 0),))

        rewarm = Engine(cache_dir=tmp_path, workers=2)
        rewarm.warm((PAIR,), (("x86", 0),))
        assert rewarm.stats.misses == 0 and rewarm.stats.puts == 0

    def test_workload_metrics_identical_across_backends(self, tmp_path):
        snapshots = {}
        for backend in BACKENDS:
            metrics = MetricsRegistry()
            engine = Engine(cache_dir=tmp_path / backend, workers=2,
                            backend=backend, metrics=metrics)
            engine.warm((PAIR, ("crc32", "small")), (("x86", 0),))
            snapshots[backend] = metrics.snapshot(include_volatile=False)
        baseline = {e["name"]: e for e in snapshots["inline"]["metrics"]}
        per_workload = baseline["engine_workload_stages"]["data"]["values"]
        assert set(per_workload) == {RECIPE.name, "crc32"}
        for backend in BACKENDS:
            assert snapshots[backend] == snapshots["inline"], backend


class TestRecipePersistence:
    def test_engine_persists_recipe_sidecar(self, tmp_path):
        """Resolving a synth workload through the engine records the
        recipe in the artifact store — a queryable provenance record
        even though the name alone is sufficient to regenerate."""
        engine = Engine(cache_dir=tmp_path)
        engine.source(*PAIR)
        assert stored_recipe(engine.store, RECIPE.fingerprint()) == RECIPE

    def test_warm_persists_recipe_sidecar(self, tmp_path):
        engine = Engine(cache_dir=tmp_path, workers=2)
        engine.warm((PAIR,), (("x86", 0),))
        assert stored_recipe(engine.store, RECIPE.fingerprint()) == RECIPE
