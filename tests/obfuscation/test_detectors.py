"""Plagiarism detector tests: winnowing (Moss) and RKR-GST (JPlag)."""

from hypothesis import given, settings, strategies as st

from repro.obfuscation.gst import greedy_string_tiling, gst_similarity
from repro.obfuscation.report import compare_sources
from repro.obfuscation.tokens import normalize_tokens
from repro.obfuscation.winnowing import (
    fingerprint_similarity,
    winnow,
    winnow_fingerprints,
)

PROGRAM_A = """
int fib(int n) {
  int a = 0;
  int b = 1;
  int i;
  int sum = 0;
  for (i = 0; i < n; i++) {
    sum = a + b;
    a = b;
    b = sum;
  }
  return sum;
}
int main() { printf("%d", fib(10)); return 0; }
"""

# A renamed copy of PROGRAM_A (classic plagiarism).
PROGRAM_A_RENAMED = """
int fibonacci(int count) {
  int first = 0;
  int second = 1;
  int index;
  int result = 0;
  for (index = 0; index < count; index++) {
    result = first + second;
    first = second;
    second = result;
  }
  return result;
}
int main() { printf("%d", fibonacci(10)); return 0; }
"""

PROGRAM_B = """
unsigned table[256];
float history[32];

unsigned crc_round(unsigned x) {
  int k;
  for (k = 0; k < 8; k++) {
    if (x & 1u) { x = 3988292384u ^ (x >> 1); } else { x = x >> 1; }
  }
  return x;
}

void build(void) {
  unsigned n;
  for (n = 0u; n < 256u; n++) {
    table[n] = crc_round(n);
  }
}

float smooth(float alpha) {
  float acc = 0.0;
  int i;
  for (i = 1; i < 32; i++) {
    history[i] = history[i - 1] * alpha + (float)(int)table[i & 255];
    acc = acc + history[i] / 3.5;
  }
  return acc;
}

int main() {
  build();
  float s = smooth(0.75);
  unsigned mixed = table[10] ^ table[200];
  while (mixed > 255u) { mixed = mixed >> 3; }
  printf("%u %.3f %u", table[255], s, mixed);
  return 0;
}
"""


class TestTokenNormalization:
    def test_identifiers_collapse(self):
        tokens_a = normalize_tokens("int foo = 3;")
        tokens_b = normalize_tokens("int bar = 99;")
        assert tokens_a == tokens_b

    def test_structure_preserved(self):
        tokens = normalize_tokens("if (a < b) { a = b; }")
        assert "if" in tokens
        assert "ID" in tokens
        assert "{" in tokens


class TestWinnowing:
    def test_identical_documents_similarity_one(self):
        tokens = normalize_tokens(PROGRAM_A)
        assert fingerprint_similarity(tokens, tokens) == 1.0

    def test_renamed_copy_detected(self):
        a = normalize_tokens(PROGRAM_A)
        b = normalize_tokens(PROGRAM_A_RENAMED)
        assert fingerprint_similarity(a, b) > 0.9

    def test_unrelated_programs_low(self):
        a = normalize_tokens(PROGRAM_A)
        b = normalize_tokens(PROGRAM_B)
        assert fingerprint_similarity(a, b) < 0.25

    def test_winnow_selects_from_every_window(self):
        hashes = [9, 3, 7, 1, 8, 2, 6]
        selected = winnow(hashes, 3)
        # The winnowing guarantee: the minimum of each window is covered.
        for start in range(len(hashes) - 2):
            window = hashes[start : start + 3]
            assert any(h in selected for h in window)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=80))
    def test_winnow_subset_of_hashes(self, hashes):
        assert winnow(hashes, 4) <= set(hashes)

    def test_empty_input(self):
        assert winnow([], 4) == set()
        assert winnow_fingerprints([]) == set()


class TestGST:
    def test_identical_similarity_one(self):
        tokens = normalize_tokens(PROGRAM_A)
        assert gst_similarity(tokens, tokens) == 1.0

    def test_renamed_copy_detected(self):
        a = normalize_tokens(PROGRAM_A)
        b = normalize_tokens(PROGRAM_A_RENAMED)
        assert gst_similarity(a, b) > 0.9

    def test_unrelated_low(self):
        a = normalize_tokens(PROGRAM_A)
        b = normalize_tokens(PROGRAM_B)
        assert gst_similarity(a, b) < 0.3

    def test_tiles_never_overlap(self):
        a = normalize_tokens(PROGRAM_A)
        b = normalize_tokens(PROGRAM_A_RENAMED)
        tiles = greedy_string_tiling(a, b)
        used_a: set[int] = set()
        used_b: set[int] = set()
        for tile in tiles:
            for k in range(tile.length):
                assert tile.start_a + k not in used_a
                assert tile.start_b + k not in used_b
                used_a.add(tile.start_a + k)
                used_b.add(tile.start_b + k)

    def test_min_match_respected(self):
        a = normalize_tokens(PROGRAM_A)
        b = normalize_tokens(PROGRAM_B)
        for tile in greedy_string_tiling(a, b, min_match=8):
            assert tile.length >= 8

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.sampled_from(["ID", "LIT", "+", ";", "if"]), max_size=60),
        st.lists(st.sampled_from(["ID", "LIT", "+", ";", "if"]), max_size=60),
    )
    def test_similarity_bounded_and_symmetricish(self, a, b):
        forward = gst_similarity(a, b)
        assert 0.0 <= forward <= 1.0

    def test_large_identical_documents_fast(self):
        """The RKR variant must not choke on long literal runs."""
        tokens = ["LIT", ","] * 6000
        assert gst_similarity(tokens, list(tokens)) == 1.0


class TestReport:
    def test_self_comparison_flagged(self):
        report = compare_sources(PROGRAM_A, PROGRAM_A)
        assert report.flagged
        assert report.moss_similarity == 1.0

    def test_unrelated_clean(self):
        report = compare_sources(PROGRAM_A, PROGRAM_B)
        assert not report.flagged
