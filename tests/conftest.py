"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cc.driver import compile_program
from repro.engine.store import CACHE_DIR_ENV
from repro.sim.functional import run_binary


@pytest.fixture(autouse=True)
def _hermetic_artifact_store(tmp_path_factory, monkeypatch):
    """Point the engine's persistent store at a per-session tmp dir so
    tests never read from or pollute the user's ~/.cache/repro."""
    monkeypatch.setenv(
        CACHE_DIR_ENV, str(tmp_path_factory.getbasetemp() / "repro-cache")
    )

FIB_SOURCE = r"""
int fib(int n) {
  int a = 0;
  int b = 1;
  int i;
  int sum = 0;
  for (i = 0; i < n; i++) {
    sum = a + b;
    if (sum < 0) { printf("overflow"); break; }
    a = b;
    b = sum;
  }
  return sum;
}

int main() {
  printf("%d\n", fib(20));
  return 0;
}
"""

LOOPY_SOURCE = r"""
int data[64];

int work(int rounds) {
  int acc = 0;
  int r;
  for (r = 0; r < rounds; r++) {
    int i;
    for (i = 0; i < 64; i++) {
      acc = acc + data[i];
      if ((acc & 7) == 0) { acc = acc + 3; }
    }
  }
  return acc;
}

int main() {
  int i;
  for (i = 0; i < 64; i++) {
    data[i] = i * 3 - 17;
  }
  printf("%d\n", work(50));
  return 0;
}
"""


def run_source(source: str, isa: str = "x86", opt_level: int = 0):
    """Compile and simulate, returning the execution trace."""
    result = compile_program(source, isa, opt_level)
    return run_binary(result.binary)


@pytest.fixture(scope="session")
def fib_source() -> str:
    return FIB_SOURCE


@pytest.fixture(scope="session")
def loopy_source() -> str:
    return LOOPY_SOURCE
