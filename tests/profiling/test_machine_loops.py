"""Machine-level natural-loop detection tests."""

from repro.cc.driver import compile_program
from repro.profiling.loops import find_machine_loops, machine_cfg


def machine_func(source: str, name: str = "main"):
    binary = compile_program(source).binary
    return binary.function(name)


class TestMachineCFG:
    def test_successors_cover_all_blocks(self):
        func = machine_func(
            "int main() { int i; int t = 0; "
            "for (i = 0; i < 5; i++) { t = t + i; } "
            'printf("%d", t); return 0; }'
        )
        succs = machine_cfg(func)
        assert set(succs) == set(range(len(func.blocks)))

    def test_ret_block_has_no_successors(self):
        func = machine_func("int main() { return 3; }")
        succs = machine_cfg(func)
        last_with_ret = [
            i for i, blk in enumerate(func.blocks)
            if blk.instrs and blk.instrs[-1].op == "ret"
        ]
        for idx in last_with_ret:
            assert succs[idx] == []

    def test_call_block_falls_through(self):
        func = machine_func(
            "int f() { return 1; } int main() { return f(); }"
        )
        succs = machine_cfg(func)
        for i, blk in enumerate(func.blocks):
            if blk.instrs and blk.instrs[-1].op == "call":
                assert succs[i] == [blk.fall_through]


class TestLoopDetection:
    def test_single_loop(self):
        func = machine_func(
            "int main() { int i; int t = 0; "
            "for (i = 0; i < 5; i++) { t = t + i; } "
            'printf("%d", t); return 0; }'
        )
        loops = find_machine_loops(func)
        assert len(loops) == 1
        assert loops[0].back_edges

    def test_nested_loops_nest(self):
        func = machine_func(
            "int main() { int i; int j; int t = 0; "
            "for (i = 0; i < 5; i++) { for (j = 0; j < 5; j++) { t++; } } "
            'printf("%d", t); return 0; }'
        )
        loops = find_machine_loops(func)
        assert len(loops) == 2
        inner = min(loops, key=lambda lp: len(lp.body))
        outer = max(loops, key=lambda lp: len(lp.body))
        assert inner.parent is outer
        assert inner.depth == 2

    def test_sequential_loops_independent(self):
        func = machine_func(
            "int main() { int i; int t = 0; "
            "for (i = 0; i < 5; i++) { t++; } "
            "for (i = 0; i < 7; i++) { t--; } "
            'printf("%d", t); return 0; }'
        )
        loops = find_machine_loops(func)
        assert len(loops) == 2
        assert all(lp.parent is None for lp in loops)
        assert not (loops[0].body & loops[1].body)

    def test_while_loop_detected(self):
        func = machine_func(
            "int main() { int i = 10; while (i) { i--; } return i; }"
        )
        assert len(find_machine_loops(func)) == 1

    def test_do_while_detected(self):
        func = machine_func(
            "int main() { int i = 0; do { i++; } while (i < 5); return i; }"
        )
        assert len(find_machine_loops(func)) == 1

    def test_straight_line_no_loops(self):
        func = machine_func("int main() { int a = 1; return a + 2; }")
        assert find_machine_loops(func) == []
