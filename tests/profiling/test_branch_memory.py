"""Branch taken/transition-rate and Table I memory-class profiling tests."""

import pytest

from repro.profiling.branch_profile import BranchStats, profile_branches
from repro.profiling.memory_profile import (
    MISS_CLASS_STRIDES,
    miss_class_for_rate,
    profile_memory,
)
from repro.profiling.profile import profile_workload
from tests.conftest import run_source


def log_for(outcomes, pc=5):
    return [(pc << 1) | int(t) for t in outcomes]


class TestBranchProfile:
    def test_taken_rate(self):
        profile = profile_branches(log_for([1, 1, 1, 0]))
        stats = profile.stats(5)
        assert stats.taken_rate == 0.75
        assert stats.executions == 4

    def test_transition_rate_alternating_is_easy(self):
        """High transition rate = easy (predictable) per Huang et al."""
        profile = profile_branches(log_for([1, 0, 1, 0, 1]))
        stats = profile.stats(5)
        assert stats.transition_rate == 1.0
        assert stats.is_easy

    def test_transition_rate_constant(self):
        profile = profile_branches(log_for([1] * 10))
        stats = profile.stats(5)
        assert stats.transition_rate == 0.0
        assert stats.is_easy

    def test_transition_rate_mixed_is_hard(self):
        outcomes = [1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 0, 1]
        profile = profile_branches(log_for(outcomes))
        stats = profile.stats(5)
        assert 0.1 < stats.transition_rate < 0.9
        assert not stats.is_easy

    def test_multiple_branches_separate(self):
        log = log_for([1, 1], pc=1) + log_for([0, 0], pc=2)
        profile = profile_branches(log)
        assert profile.stats(1).taken_rate == 1.0
        assert profile.stats(2).taken_rate == 0.0

    def test_hard_fraction(self):
        log = log_for([1, 0] * 20, pc=1) + log_for([1] * 10, pc=2)
        profile = profile_branches(log)
        # pc=1 alternates (transition 1.0 -> easy-high); pc=2 constant easy.
        assert profile.hard_fraction() == 0.0


class TestMissClasses:
    def test_table_i_boundaries(self):
        """Table I: the nine classes and their strides."""
        assert miss_class_for_rate(0.0) == 0
        assert miss_class_for_rate(0.05) == 0
        assert miss_class_for_rate(0.10) == 1
        assert miss_class_for_rate(0.25) == 2
        assert miss_class_for_rate(0.50) == 4
        assert miss_class_for_rate(0.75) == 6
        assert miss_class_for_rate(0.95) == 8
        assert miss_class_for_rate(1.0) == 8

    def test_stride_table_matches_paper(self):
        assert MISS_CLASS_STRIDES == (0, 4, 8, 12, 16, 20, 24, 28, 32)

    def test_class_to_stride_roundtrip(self):
        """Stride s produces miss rate ~s/32, classifying back to itself."""
        for klass, stride in enumerate(MISS_CLASS_STRIDES):
            rate = stride / 32
            assert miss_class_for_rate(rate) == klass


class TestMemoryProfiling:
    STREAMING = """
    unsigned buf[65536];
    int main() {
      unsigned total = 0u;
      int i;
      for (i = 0; i < 65536; i = i + 8) {
        total = total + buf[i];
      }
      printf("%u", total);
      return 0;
    }
    """

    HOT_SCALAR = """
    int main() {
      int total = 0;
      int i;
      for (i = 0; i < 500; i++) {
        total = total + i;
      }
      printf("%d", total);
      return 0;
    }
    """

    def test_streaming_access_classified_missy(self):
        trace = run_source(self.STREAMING)
        profile = profile_memory(trace.binary, trace)
        # The buf[i] load walks 32 bytes per access -> class 8 (always miss).
        classes = [
            stats.miss_class
            for stats in profile.stats.values()
            if stats.accesses > 1000
        ]
        assert max(classes) == 8

    def test_hot_scalars_class_zero(self):
        trace = run_source(self.HOT_SCALAR)
        profile = profile_memory(trace.binary, trace)
        hot = [s for s in profile.stats.values() if s.accesses > 100]
        assert hot
        assert all(s.miss_class == 0 for s in hot)

    def test_accesses_sum_to_trace(self):
        trace = run_source(self.HOT_SCALAR)
        profile = profile_memory(trace.binary, trace)
        assert profile.total_accesses == len(trace.mem_addrs)

    def test_working_set_estimate(self):
        trace = run_source(self.HOT_SCALAR)
        profile = profile_memory(trace.binary, trace)
        hot = [s for s in profile.stats.values() if s.accesses > 100]
        assert all(s.working_set_bytes() <= 2048 for s in hot)

    def test_hit_rates_monotonic_with_size(self):
        trace = run_source(self.STREAMING)
        profile = profile_memory(trace.binary, trace)
        sizes = sorted(profile.hit_rates_by_size)
        rates = [profile.hit_rates_by_size[s] for s in sizes]
        # 4-way caches aren't strictly monotonic, but near enough here.
        assert rates[-1] >= rates[0] - 0.01


class TestFullProfile:
    def test_profile_workload_end_to_end(self, fib_source):
        profile, trace = profile_workload(fib_source)
        assert profile.total_instructions == trace.instructions
        assert profile.sfgl.blocks
        assert profile.mix.total == trace.instructions

    def test_reduction_for_target(self, fib_source):
        profile, _ = profile_workload(fib_source)
        assert profile.reduction_for_target(profile.total_instructions) == 1
        assert profile.reduction_for_target(100) >= 1
        with pytest.raises(ValueError):
            profile.reduction_for_target(0)
