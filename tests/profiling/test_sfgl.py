"""SFGL construction and scale-down tests (§III-A.1, §III-B.1, Fig. 2)."""

import pytest

from repro.profiling.profile import profile_workload
from repro.profiling.sfgl import SFGL, SFGLBlock, SFGLLoop

NESTED_LOOPS = """
int data[64];
int main() {
  int i;
  int j;
  int total = 0;
  for (i = 0; i < 50; i++) {
    for (j = 0; j < 20; j++) {
      total = total + data[j];
    }
    data[i & 63] = total & 255;
  }
  printf("%d", total);
  return 0;
}
"""

CALLS = """
int helper(int x) { return x * 2 + 1; }
int main() {
  int total = 0;
  int i;
  for (i = 0; i < 30; i++) {
    total = total + helper(i);
  }
  printf("%d", total);
  return 0;
}
"""


@pytest.fixture(scope="module")
def nested_profile():
    profile, _trace = profile_workload(NESTED_LOOPS)
    return profile


@pytest.fixture(scope="module")
def calls_profile():
    profile, _trace = profile_workload(CALLS)
    return profile


class TestConstruction:
    def test_block_counts_sum_to_trace(self, nested_profile):
        sfgl = nested_profile.sfgl
        assert sfgl.total_instructions() == nested_profile.total_instructions

    def test_two_nested_loops_found(self, nested_profile):
        loops = nested_profile.sfgl.loops
        assert len(loops) == 2
        inner = max(loops, key=lambda lp: lp.iterations)
        outer = min(loops, key=lambda lp: lp.iterations)
        assert inner.parent is outer
        assert outer.parent is None

    def test_loop_trip_counts(self, nested_profile):
        loops = nested_profile.sfgl.loops
        inner = max(loops, key=lambda lp: lp.iterations)
        outer = min(loops, key=lambda lp: lp.iterations)
        # for i in 0..50: header executes 51 times per entry.
        assert outer.average_trip == pytest.approx(51, abs=1)
        assert inner.average_trip == pytest.approx(21, abs=1)

    def test_edges_have_counts(self, nested_profile):
        sfgl = nested_profile.sfgl
        assert sfgl.edges
        assert all(count >= 1 for count in sfgl.edges.values())

    def test_edge_probabilities_sum_to_one(self, nested_profile):
        sfgl = nested_profile.sfgl
        sources = {src for (src, _dst) in sfgl.edges}
        for src in sources:
            total = sum(
                sfgl.edge_probability(src, dst)
                for (s, dst) in sfgl.edges
                if s == src
            )
            assert total == pytest.approx(1.0)

    def test_call_counts(self, calls_profile):
        sfgl = calls_profile.sfgl
        helper_index = next(
            idx for idx, name in sfgl.function_names.items() if name == "helper"
        )
        assert sfgl.call_counts[helper_index] == 30


class TestScaleDown:
    def test_counts_divided(self, nested_profile):
        sfgl = nested_profile.sfgl
        scaled = sfgl.scale_down(10)
        for gbid, block in scaled.blocks.items():
            assert block.count == sfgl.blocks[gbid].count // 10

    def test_cold_blocks_removed(self, nested_profile):
        """The paper's Fig. 2: block C (count < R) disappears."""
        sfgl = nested_profile.sfgl
        scaled = sfgl.scale_down(100)
        removed = set(sfgl.blocks) - set(scaled.blocks)
        assert removed  # main's once-executed setup blocks vanish
        for gbid in removed:
            assert sfgl.blocks[gbid].count < 100

    def test_total_shrinks_by_factor(self, nested_profile):
        sfgl = nested_profile.sfgl
        scaled = sfgl.scale_down(10)
        ratio = sfgl.total_instructions() / max(1, scaled.total_instructions())
        assert 8 < ratio < 14

    def test_loop_iterations_scaled(self, nested_profile):
        sfgl = nested_profile.sfgl
        scaled = sfgl.scale_down(10)
        inner_orig = max(sfgl.loops, key=lambda lp: lp.iterations)
        inner_scaled = max(scaled.loops, key=lambda lp: lp.iterations)
        assert inner_scaled.iterations == pytest.approx(
            inner_orig.iterations // 10, abs=1
        )

    def test_reduction_factor_one_is_identity_counts(self, nested_profile):
        sfgl = nested_profile.sfgl
        scaled = sfgl.scale_down(1)
        assert scaled.total_instructions() == sfgl.total_instructions()

    def test_invalid_reduction_rejected(self, nested_profile):
        with pytest.raises(ValueError):
            nested_profile.sfgl.scale_down(0)

    def test_paper_example_shape(self):
        """Fig. 2 numerically: counts /100, B survives as 4, C dies."""
        sfgl = SFGL()
        counts = {"A": 500, "B": 420, "C": 80, "D": 500, "E": 5000,
                  "F": 1000, "G": 4000, "H": 5000, "I": 500}
        for i, (name, count) in enumerate(counts.items()):
            sfgl.blocks[i] = SFGLBlock(
                gbid=i, func_index=0, block_index=i, count=count, instrs=[]
            )
        scaled = sfgl.scale_down(100)
        by_name = {name: i for i, name in enumerate(counts)}
        assert scaled.blocks[by_name["A"]].count == 5
        assert scaled.blocks[by_name["B"]].count == 4
        assert by_name["C"] not in scaled.blocks  # removed, like the paper
        assert scaled.blocks[by_name["E"]].count == 50
        assert scaled.blocks[by_name["G"]].count == 40
